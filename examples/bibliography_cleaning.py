"""Scenario: cleaning a bibliography (the paper's DBLP workload).

Uses the cleaning library API directly (the "generated code" layer under
the CleanM language) on a hierarchical publication dataset:

1. validate author names against a dictionary with token filtering and
   k-means pruning, scoring accuracy against the generator's ground truth;
2. detect duplicate publications (same journal + title, >80% similar);
3. compare the comparison counts each pruning strategy needed.

Run:  python examples/bibliography_cleaning.py
"""

from repro.cleaning import deduplicate, validate_terms
from repro.datasets import generate_dblp
from repro.datasets.dblp import author_occurrences
from repro.engine import Cluster
from repro.evaluation import print_table, score_pairs, score_term_repairs


def main() -> None:
    data = generate_dblp(
        num_publications=300,
        num_authors=100,
        noise_fraction=0.10,
        noise_rate=0.25,
        dup_fraction=0.10,
        seed=7,
    )
    print(
        f"{len(data.records)} publications; {len(data.dirty_names)} misspelled "
        f"author occurrences; {len(data.duplicate_pairs)} true duplicate pairs"
    )

    # --- 1. term validation, two pruning strategies -------------------- #
    rows = []
    for label, params in (
        ("token filtering q=3", {"op": "token_filtering", "q": 3}),
        ("k-means k=10", {"op": "kmeans", "k": 10}),
    ):
        cluster = Cluster(num_nodes=4)
        authors = cluster.parallelize(author_occurrences(data.records))
        repairs = validate_terms(
            authors, data.dictionary, theta=0.70, delta=0.02, **params
        ).collect()
        accuracy = score_term_repairs(repairs, data.dirty_names)
        rows.append(
            {
                "pruning": label,
                "repairs": len(repairs),
                "comparisons": cluster.metrics.comparisons,
                **accuracy.as_row(),
            }
        )
    print_table("Author-name validation", rows)

    example = next(iter(sorted(data.dirty_names)))
    print(f"\nexample ground truth: {example!r} should repair to {data.dirty_names[example]!r}")

    # --- 2. duplicate elimination -------------------------------------- #
    cluster = Cluster(num_nodes=4)
    publications = cluster.parallelize(data.records)
    pairs = deduplicate(
        publications,
        ["pages", "authors"],
        block_on=lambda r: (r["journal"], r["title"]),
        theta=0.8,
    ).collect()
    score = score_pairs([(p.left_id, p.right_id) for p in pairs], data.duplicate_pairs)
    print(
        f"\nduplicates: found {len(pairs)} pairs "
        f"(precision={score.precision:.2f}, recall={score.recall:.2f})"
    )
    if pairs:
        sample = pairs[0]
        print(f"  e.g. {sample.left['key']} <-> {sample.right['key']} "
              f"(title: {sample.left['title'][:40]!r})")


if __name__ == "__main__":
    main()
