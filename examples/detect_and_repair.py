"""Scenario: a full detect → repair → re-check loop.

CleanM focuses on violation *detection*; its outputs carry enough
information to drive repairs (the paper calls repairing an orthogonal
extension).  This example closes the loop on a publication dataset:

1. detect misspelled author names and apply the suggested repairs;
2. detect duplicate publications, transitively close the pairs into entity
   clusters, and fuse each cluster to one representative;
3. detect FD violations and repair them by majority vote;
4. re-run detection to show the dataset now comes back clean.

Run:  python examples/detect_and_repair.py
"""

from repro.cleaning import (
    apply_term_repairs,
    check_fd,
    deduplicate,
    entity_clusters,
    fuse_duplicates,
    repair_fd_by_majority,
    validate_terms,
)
from repro.datasets import generate_dblp
from repro.datasets.dblp import author_occurrences
from repro.engine import Cluster


def fresh(records):
    copies = [dict(r) if isinstance(r, dict) else r for r in records]
    return Cluster(num_nodes=4).parallelize(copies)


def main() -> None:
    data = generate_dblp(
        num_publications=200, num_authors=80,
        noise_fraction=0.10, noise_rate=0.25, dup_fraction=0.12, seed=17,
    )
    records = data.records
    print(f"start: {len(records)} publications, "
          f"{len(data.dirty_names)} dirty author names, "
          f"{len(data.duplicate_pairs)} true duplicate pairs")

    # -- 1. repair misspelled author names ------------------------------- #
    repairs = validate_terms(
        fresh(author_occurrences(records)).distinct(),
        data.dictionary, theta=0.70, q=2,
    ).collect()
    records, changed = apply_term_repairs(records, "authors", repairs)
    print(f"term repair: {len(repairs)} dirty names, {changed} occurrences rewritten")

    # -- 2. fuse duplicate publications ----------------------------------- #
    pairs = deduplicate(
        fresh(records), ["pages", "authors"],
        block_on=lambda r: (r["journal"], r["title"]), theta=0.8,
    ).collect()
    clusters = entity_clusters(pairs)
    records = fuse_duplicates(records, pairs)
    print(f"dedup: {len(pairs)} pairs -> {len(clusters)} entity clusters; "
          f"{len(records)} publications after fusion")

    # -- 3. repair an FD by majority -------------------------------------- #
    # (journal, title) should determine year; duplicates may disagree.
    violations = check_fd(
        fresh(records), ["journal", "title"], ["year"]
    ).collect()
    records, fd_changed = repair_fd_by_majority(
        records, violations, ["journal", "title"], "year"
    )
    print(f"fd repair: {len(violations)} violated groups, {fd_changed} years rewritten")

    # -- 4. verify the dataset is now clean ------------------------------- #
    left_dirty = validate_terms(
        fresh(author_occurrences(records)).distinct(),
        data.dictionary, theta=0.70, q=2,
    ).collect()
    left_fd = check_fd(fresh(records), ["journal", "title"], ["year"]).collect()
    print(f"re-check: {len(left_dirty)} dirty names remain, "
          f"{len(left_fd)} FD violations remain")
    assert not left_fd


if __name__ == "__main__":
    main()
