"""Scenario: one cleaning task over four storage formats (§7 / Fig. 7).

The same nested publication data is written to JSON, XML, flat CSV, and the
binary columnar format, loaded back through the catalog, and deduplicated.
Shows (a) identical answers from every representation, (b) the file-size
and scan-cost differences that make nested/columnar representations the
better home for dirty data.

Run:  python examples/heterogeneous_sources.py
"""

import tempfile
from pathlib import Path

from repro.cleaning import deduplicate
from repro.datasets import generate_dblp
from repro.engine import Cluster
from repro.evaluation import print_table
from repro.sources import (
    Catalog,
    Field,
    Schema,
    file_size,
    flatten_records,
    write_records,
)

NESTED_SCHEMA = Schema(
    (
        Field("key", "str"),
        Field("title", "str"),
        Field("journal", "str"),
        Field("year", "int"),
        Field("pages", "str"),
        Field("authors", "list"),
    )
)


def main() -> None:
    data = generate_dblp(num_publications=200, num_authors=80, dup_fraction=0.15, seed=3)
    nested = [{k: r[k] for k in NESTED_SCHEMA.names} for r in data.records]
    flat = flatten_records(nested, "authors")

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        catalog = Catalog()
        variants = [
            ("json", nested, "publications.json", None),
            ("xml", nested, "publications.xml", NESTED_SCHEMA),
            ("columnar", nested, "publications.rcol", NESTED_SCHEMA),
            ("csv", flat, "publications_flat.csv", NESTED_SCHEMA),
        ]
        rows = []
        answers = {}
        for fmt, records, filename, schema in variants:
            path = tmp_path / filename
            write_records(path, records, fmt, schema)
            catalog.register(f"pubs_{fmt}", path, fmt, schema)

            loaded = catalog.load(f"pubs_{fmt}")
            cluster = Cluster(num_nodes=4)
            ds = cluster.parallelize(loaded, fmt=fmt, name=f"pubs_{fmt}")
            pairs = deduplicate(
                ds,
                ["pages"],
                block_on=lambda r: (r["journal"], r["title"]),
                theta=0.8,
            ).collect()
            # Flat rows repeat one publication per author: pairs between two
            # author-rows of the SAME publication are an artifact of
            # flattening, and each cross-publication pair shows up once per
            # author combination.  Deduplicate on publication keys so every
            # representation reports the same answer.
            distinct = {
                (min(p.left["key"], p.right["key"]), max(p.left["key"], p.right["key"]))
                for p in pairs
                if p.left["key"] != p.right["key"]
            }
            answers[fmt] = distinct
            rows.append(
                {
                    "format": fmt,
                    "rows": len(loaded),
                    "file bytes": file_size(path),
                    "dup pairs": len(distinct),
                    "simulated time": round(cluster.metrics.simulated_time, 1),
                }
            )
        print_table("One dedup task, four representations", rows)

    assert len({frozenset(v) for v in answers.values()}) == 1, "answers must agree"
    print("\nAll four representations produced identical duplicate sets.")
    print("Columnar is the smallest and cheapest to scan; the flat CSV carries "
          "one row per author and costs the most (Fig. 7's conclusion).")


if __name__ == "__main__":
    main()
