"""Scenario: denial-constraint checking on TPC-H (the paper's §8.3 workload).

1. Check the functional dependency φ: orderkey, linenumber → suppkey on the
   noisy lineitem table, comparing the three systems' grouping strategies.
2. Check the inequality rule ψ (no item out-discounts a more expensive
   item) under an execution budget — only CleanDB's planned DC kernel
   (equality prefix + sorted band scan) survives.
3. Repair the surviving violations by relaxation: cover the violation
   hypergraph with a minimal set of cells and move each to the nearest
   constraint-satisfying value.

Run:  python examples/constraint_checking.py
"""

from repro.baselines import BigDansingSystem, CleanDBSystem, SparkSQLSystem
from repro.cleaning import find_violations, repair_dc_by_relaxation
from repro.datasets import generate_lineitem, rule_phi, rule_psi
from repro.evaluation import print_table

SYSTEMS = (CleanDBSystem, SparkSQLSystem, BigDansingSystem)


def main() -> None:
    lineitem = generate_lineitem(30)
    print(f"lineitem SF30: {len(lineitem)} rows (10% orderkey noise)")

    # --- 1. FD check across systems ------------------------------------ #
    lhs, rhs = rule_phi()
    rows = []
    for cls in SYSTEMS:
        result = cls(num_nodes=10).check_fd(lineitem, lhs, rhs, fmt="csv")
        rows.append(
            {
                "system": result.system,
                "violating groups": result.output_count,
                "simulated time": round(result.simulated_time, 1),
                "records shuffled": result.shuffled_records,
            }
        )
    print_table("FD phi: orderkey, linenumber -> suppkey", rows)

    # --- 2. inequality DC under a budget -------------------------------- #
    prices = sorted(r["price"] for r in lineitem)
    psi = rule_psi(price_cap=prices[len(prices) // 200])
    rows = []
    for cls in SYSTEMS:
        result = cls(num_nodes=10, budget=55_000).check_dc(lineitem, psi)
        rows.append(
            {
                "system": result.system,
                "status": result.status,
                "violations": result.output_count if result.ok else None,
                "simulated time": round(result.simulated_time, 1) if result.ok else None,
            }
        )
    print_table("DC psi: t1.price < t2.price AND t1.discount > t2.discount", rows)
    print(
        "\nOnly CleanDB's banded DC kernel finishes: Spark SQL materializes a\n"
        "cartesian product, BigDansing's min-max pruning cannot prune shuffled\n"
        "data and re-shuffles every partition pair (paper Table 5)."
    )

    # --- 3. repair by relaxation ---------------------------------------- #
    repaired, report = repair_dc_by_relaxation(lineitem, psi)
    print(
        f"\nRepair by relaxation: {report.violations_found} violating pairs"
        f" covered by {report.cover_size} cells"
        f" ({report.cells_changed} moved, {report.cells_nulled} nulled,"
        f" {report.rounds} round(s));"
        f" residual violations: {len(find_violations(repaired, psi))}"
    )


if __name__ == "__main__":
    main()
