"""Quickstart: the paper's running example in ~40 lines.

A customer table is checked for three kinds of problems in ONE CleanM
query — a functional dependency, duplicate entries, and misspelled names
validated against a dictionary — and the optimizer coalesces the work.

Run:  python examples/quickstart.py
"""

from repro import CleanDB

customers = [
    {"name": "stella gian",  "address": "12 lake rd", "phone": "021-555-01", "nationkey": 7},
    {"name": "stela gian",   "address": "12 lake rd", "phone": "027-555-02", "nationkey": 7},
    {"name": "manos karp",   "address": "3 hill ave",  "phone": "022-555-03", "nationkey": 9},
    {"name": "manos karp",   "address": "3 hill ave",  "phone": "022-555-04", "nationkey": 4},
    {"name": "ben gaidioz",  "address": "9 main st",   "phone": "024-555-05", "nationkey": 2},
]
dictionary = ["stella gian", "manos karp", "ben gaidioz"]

QUERY = """
SELECT c.name, c.address, *
FROM customer c, dictionary d
FD(c.address, prefix(c.phone))
DEDUP(exact, LD, 0.7, c.address)
CLUSTER BY(token_filtering, LD, 0.7, c.name)
"""


def main() -> None:
    db = CleanDB(num_nodes=4, q=2)
    db.register_table("customer", customers)
    db.register_table("dictionary", dictionary)

    print(db.explain(QUERY))

    result = db.execute(QUERY)

    print("\n-- FD violations (address should determine the phone prefix) --")
    for violation in result.branch("fd1"):
        print(f"  address={violation['key']!r} maps to prefixes {sorted(violation['p0'])}")

    print("\n-- Duplicate customers (same address) --")
    for pair in result.branch("dedup"):
        print(f"  {pair['p1']['name']!r}  <->  {pair['p2']['name']!r}")

    print("\n-- Term repairs (names validated against the dictionary) --")
    for dirty, suggestion in sorted(result.branch("cluster_by")):
        print(f"  {dirty!r}  ->  {suggestion!r}")

    print(f"\nsimulated cost: {result.metrics['simulated_time']:.0f} units; "
          f"rewrites: coalesced={result.report.coalesced_groups}, "
          f"shared scan={result.report.shared_scan}")


if __name__ == "__main__":
    main()
