"""Tests for the multi-tenant serving layer.

The contracts under test are the ones concurrency can silently break:
interleaved queries must return byte-identical results to serial runs, one
tenant's budget abort must not disturb another tenant's resident state, and
per-query metrics must attribute transport to the query that caused it even
when ten queries share the pool.  Everything runs on small deterministic
datasets so ``repr`` comparisons are stable.
"""

import asyncio

import pytest

from fixtures import WORKERS, cyclic_nully_rows
from repro.core.language import CleanDB
from repro.serving import CleanService, LoadReport, QueryOutcome, percentile


# --------------------------------------------------------------------- #
# Deterministic tenant datasets and a mixed workload
# --------------------------------------------------------------------- #

def _rows(seed, n=18):
    """Per-tenant rows: same columns, different values, cyclic nulls."""
    return cyclic_nully_rows(
        n,
        {
            "name": (3, lambda i: f"n{(i + seed) % 4}"),
            "city": (None, lambda i: f"c{(i + seed) % 3}"),
            "v": (5, lambda i: (i * (seed + 1)) % 7),
        },
    )


def _workload():
    """Eight mixed queries from two tenants (fd / dedup / dc / sql)."""
    return [
        {"tenant": "acme", "op": "fd", "table": "t", "lhs": ["name"], "rhs": ["city"]},
        {"tenant": "zen", "op": "dedup", "table": "t", "attributes": ["name"], "theta": 0.5},
        {"tenant": "acme", "op": "dc", "table": "t", "rule": "t1.v < t2.v and t1.city == t2.city"},
        {"tenant": "zen", "op": "fd", "table": "t", "lhs": ["city"], "rhs": ["v"]},
        {"tenant": "acme", "op": "dedup", "table": "t", "attributes": ["city"], "theta": 0.5},
        {"tenant": "zen", "op": "dc", "table": "t", "rule": "t1.v > t2.v and t1.name == t2.name"},
        {"tenant": "acme", "op": "sql", "text": "SELECT * FROM t r"},
        {"tenant": "zen", "op": "fd", "table": "t", "lhs": ["name"], "rhs": ["v"]},
    ]


def _service(**kwargs):
    svc = CleanService(workers=WORKERS, **kwargs)
    svc.register_table("acme", "t", _rows(0))
    svc.register_table("zen", "t", _rows(1))
    return svc


# --------------------------------------------------------------------- #
# Concurrent execution is byte-identical to serial execution
# --------------------------------------------------------------------- #

class TestConcurrencyParity:
    def test_concurrent_matches_serial(self):
        with _service() as serial_svc, _service() as conc_svc:
            serial = serial_svc.run_queries(_workload(), sequential=True)
            concurrent = conc_svc.run_queries(_workload())
        assert serial.all_ok and concurrent.all_ok
        assert len(concurrent.outcomes) == len(_workload())
        for s, c in zip(serial.outcomes, concurrent.outcomes):
            assert (s.tenant, s.op, s.status) == (c.tenant, c.op, c.status)
            assert repr(s.rows) == repr(c.rows)

    def test_concurrent_matches_standalone_cleandb(self):
        """Ground truth: each tenant alone on a private pool."""
        expected = []
        for tenant, seed in (("acme", 0), ("zen", 1)):
            db = CleanDB(execution="parallel", workers=WORKERS)
            try:
                db.register_table("t", _rows(seed))
                for spec in _workload():
                    if spec["tenant"] != tenant:
                        continue
                    if spec["op"] == "fd":
                        rows = db.check_fd(spec["table"], spec["lhs"], spec["rhs"])
                    elif spec["op"] == "dedup":
                        rows = db.deduplicate(
                            spec["table"], spec["attributes"], theta=spec["theta"]
                        )
                    elif spec["op"] == "dc":
                        from repro.cleaning.dc_kernel import parse_dc

                        rows = db.check_dc(spec["table"], parse_dc(spec["rule"]))
                    else:
                        rows = db.execute(spec["text"]).branches
                    expected.append((tenant, repr(rows)))
            finally:
                db.close()
        with _service() as svc:
            report = svc.run_queries(_workload())
        assert report.all_ok
        got = sorted((o.tenant, repr(o.rows)) for o in report.outcomes)
        assert got == sorted(expected)

    def test_tenants_never_alias_each_others_tables(self):
        """Same table name, different rows: fd violations must differ."""
        fd = {"op": "fd", "table": "t", "lhs": ["name"], "rhs": ["city"]}
        with _service() as svc:
            report = svc.run_queries(
                [dict(fd, tenant="acme"), dict(fd, tenant="zen")]
            )
        assert report.all_ok
        acme, zen = report.outcomes
        assert repr(acme.rows) != repr(zen.rows)

    def test_within_tenant_queries_run_fifo(self):
        """A tenant's own queries finish in submission order."""
        order = []

        async def drive():
            with _service() as svc:
                tasks = [
                    svc.submit(
                        "acme",
                        {"op": "fd", "table": "t", "lhs": ["name"], "rhs": [c]},
                    )
                    for c in ("city", "v", "name")
                ]
                for i, task in enumerate(tasks):
                    task.add_done_callback(lambda _t, i=i: order.append(i))
                await asyncio.gather(*tasks)

        asyncio.run(drive())
        assert order == [0, 1, 2]


# --------------------------------------------------------------------- #
# Budget aborts are query-scoped and tenant-isolated
# --------------------------------------------------------------------- #

class TestBudgetIsolation:
    def test_abort_leaves_other_tenant_resident_and_running(self):
        svc = CleanService(workers=WORKERS)
        try:
            svc.session("poor", budget=1e-9)  # first op with any cost aborts
            svc.register_table("poor", "t", _rows(0))
            svc.register_table("rich", "t", _rows(1))
            fd = {"op": "fd", "table": "t", "lhs": ["name"], "rhs": ["city"]}
            report = svc.run_queries(
                [dict(fd, tenant="poor"), dict(fd, tenant="rich")]
            )
            poor, rich = report.outcomes
            assert poor.status == "budget_exceeded"
            assert rich.status == "ok"
            # The abort never unwinds the sibling's gather or the pool.
            assert svc.session("rich").db.pinned_table_bytes("t") > 0
            key = svc.session("rich").db._pinned_key("t")
            assert svc.pool.pinned(*key) is not None
            # The pool keeps serving: rich runs another query afterwards.
            again = svc.run_queries([dict(fd, tenant="rich")])
            assert again.all_ok
            assert repr(again.outcomes[0].rows) == repr(rich.rows)
        finally:
            svc.close()

    def test_abort_leaves_own_pins_resident(self):
        """Query-scoped abort: the tenant's store state survives its own
        blow-up (only the budget is spent, nothing is torn down)."""
        svc = CleanService(workers=WORKERS)
        try:
            svc.session("poor", budget=1e-9)
            svc.register_table("poor", "t", _rows(0))
            report = svc.run_queries(
                [{"tenant": "poor", "op": "fd", "table": "t",
                  "lhs": ["name"], "rhs": ["city"]}]
            )
            assert report.outcomes[0].status == "budget_exceeded"
            assert svc.session("poor").db.pinned_table_bytes("t") > 0
        finally:
            svc.close()


# --------------------------------------------------------------------- #
# Per-query transport attribution under interleaving
# --------------------------------------------------------------------- #

class TestMetricsIsolation:
    def test_interleaved_per_op_transport_matches_single_runs(self):
        """With both services warmed identically, each query's measured
        bytes/ships must be the same whether it runs alone (sequential) or
        interleaved with seven others — attribution is per call token, not
        pool-global."""
        with _service() as serial_svc, _service() as conc_svc:
            serial_svc.run_queries(_workload(), sequential=True)  # warm
            conc_svc.run_queries(_workload(), sequential=True)  # warm
            serial = serial_svc.run_queries(_workload(), sequential=True)
            concurrent = conc_svc.run_queries(_workload())
        for s, c in zip(serial.outcomes, concurrent.outcomes):
            assert (s.tenant, s.op) == (c.tenant, c.op)
            assert c.metrics["bytes_shipped"] == s.metrics["bytes_shipped"]
            assert c.metrics["ship_count"] == s.metrics["ship_count"]
            assert c.metrics["num_ops"] == s.metrics["num_ops"]
            assert c.metrics["measured_time"] >= 0.0

    def test_outcome_metrics_cover_only_the_query_window(self):
        with _service() as svc:
            fd = {"tenant": "acme", "op": "fd", "table": "t",
                  "lhs": ["name"], "rhs": ["city"]}
            first = svc.run_queries([fd]).outcomes[0]
            second = svc.run_queries([fd]).outcomes[0]
        # Each outcome reports its own window, not the session's lifetime.
        assert first.metrics["num_ops"] > 0
        assert second.metrics["num_ops"] <= first.metrics["num_ops"]


# --------------------------------------------------------------------- #
# Fault recovery on a shared multi-tenant pool
# --------------------------------------------------------------------- #

class TestFaultRecovery:
    def test_worker_kill_mid_query_is_transparent_to_both_tenants(self):
        """A worker killed mid-query on a 2-tenant service yields
        byte-identical results after transparent recovery, the outcome is
        flagged ``recovered`` with a positive retry count, and the *other*
        tenant's pins remain resident — ``invalidate_store()`` (which would
        cold-start every tenant) never fires on the happy recovery path."""
        from repro.engine import FaultPlan

        with _service() as oracle_svc:
            oracle = oracle_svc.run_queries(_workload(), sequential=True)
        plan = FaultPlan().kill_before(worker=1, nth=2)
        svc = _service(fault_plan=plan)
        try:
            def fail():  # pragma: no cover - only runs on contract breach
                raise AssertionError("invalidate_store() on the recovery path")

            svc.pool.invalidate_store = fail
            report = svc.run_queries(_workload(), sequential=True)
            assert report.all_ok
            for got, want in zip(report.outcomes, oracle.outcomes):
                assert (got.tenant, got.op, got.status) == (
                    want.tenant, want.op, want.status
                )
                assert repr(got.rows) == repr(want.rows)
            # The kill surfaced as a recovered query, not a degraded one.
            assert report.recovered_count >= 1
            assert report.degraded_count == 0
            assert report.total_retries >= 1
            assert svc.pool.retries_total >= 1
            # Both tenants' pins are still resident on the healed pool.
            for tenant in ("acme", "zen"):
                key = svc.session(tenant).db._pinned_key("t")
                assert svc.pool.pinned(*key) is not None
        finally:
            svc.close()

    def test_exhausted_retries_degrade_to_row_backend(self):
        """When every generation of a worker dies, the query must still
        answer — degraded to the row backend and flagged as such — and the
        service keeps serving afterwards."""
        from repro.engine import FaultPlan

        plan = FaultPlan()
        for gen in range(5):
            plan = plan.kill_before(worker=0, nth=1, gen=gen)
            plan = plan.kill_before(worker=1, nth=1, gen=gen)
        svc = _service(fault_plan=plan)
        try:
            fd = {"tenant": "acme", "op": "fd", "table": "t",
                  "lhs": ["name"], "rhs": ["city"]}
            outcome = svc.run_queries([fd]).outcomes[0]
            assert outcome.status == "ok"
            assert outcome.degraded
            with _service() as oracle_svc:
                want = oracle_svc.run_queries([dict(fd)]).outcomes[0]
            assert repr(outcome.rows) == repr(want.rows)
        finally:
            svc.close()


# --------------------------------------------------------------------- #
# The store-memory governor
# --------------------------------------------------------------------- #

class TestStoreGovernor:
    def test_cap_unpins_idle_tenants_lru_first(self):
        svc = CleanService(workers=WORKERS, store_bytes_cap=1)
        try:
            svc.register_table("acme", "t", _rows(0))
            assert svc.session("acme").db.pinned_table_bytes("t") > 0
            svc.register_table("zen", "t", _rows(1))
            # Registering zen's table pushed past the cap; acme (idle,
            # least recently touched) was unpinned, zen kept.
            assert svc.session("acme").db.pinned_table_bytes("t") == 0
            assert svc.session("zen").db.pinned_table_bytes("t") > 0
        finally:
            svc.close()

    def test_evicted_table_repins_transparently(self):
        """Eviction costs a warm start, never correctness."""
        fd = {"tenant": "acme", "op": "fd", "table": "t",
              "lhs": ["name"], "rhs": ["city"]}
        with _service() as uncapped:
            expected = uncapped.run_queries([fd]).outcomes[0]
        svc = CleanService(workers=WORKERS, store_bytes_cap=1)
        try:
            svc.register_table("acme", "t", _rows(0))
            svc.register_table("zen", "t", _rows(1))  # unpins acme's table
            assert svc.session("acme").db.pinned_table_bytes("t") == 0
            got = svc.run_queries([fd]).outcomes[0]
            assert got.status == "ok"
            assert repr(got.rows) == repr(expected.rows)
            # The query's admission protected acme and made room at zen's
            # expense; acme's table is resident again.
            assert svc.session("acme").db.pinned_table_bytes("t") > 0
        finally:
            svc.close()

    def test_no_cap_never_evicts(self):
        with _service() as svc:
            assert svc.session("acme").db.pinned_table_bytes("t") > 0
            assert svc.session("zen").db.pinned_table_bytes("t") > 0
            assert svc.pinned_bytes() > 0


# --------------------------------------------------------------------- #
# Session and admission edges
# --------------------------------------------------------------------- #

class TestSessionEdges:
    def test_session_settings_fixed_at_creation(self):
        with CleanService(workers=WORKERS) as svc:
            svc.session("a", budget=5.0)
            assert svc.session("a") is svc.session("a")
            with pytest.raises(ValueError, match="already exists"):
                svc.session("a", budget=9.0)

    def test_tenant_name_validation(self):
        with CleanService(workers=WORKERS) as svc:
            with pytest.raises(ValueError):
                svc.session("")
            with pytest.raises(ValueError):
                svc.session("a/b")

    def test_unknown_op_is_an_error_outcome(self):
        with _service() as svc:
            report = svc.run_queries([{"tenant": "acme", "op": "mop"}])
        outcome = report.outcomes[0]
        assert outcome.status == "error"
        assert "unknown query op" in outcome.error
        assert not report.all_ok

    def test_missing_spec_key_is_an_error_outcome(self):
        with _service() as svc:
            report = svc.run_queries(
                [{"tenant": "acme", "op": "fd", "table": "t"}]
            )
        outcome = report.outcomes[0]
        assert outcome.status == "error"
        assert "missing key" in outcome.error

    def test_request_without_tenant_rejected(self):
        with _service() as svc:
            with pytest.raises(ValueError, match="tenant"):
                svc.run_queries([{"op": "fd", "table": "t"}])

    def test_closed_service_rejects_sessions(self):
        svc = CleanService(workers=WORKERS)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            svc.session("a")


class TestReportShapes:
    def test_percentile_interpolates(self):
        assert percentile([], 99) == 0.0
        assert percentile([4.0], 50) == 4.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 99) == pytest.approx(3.97)

    def test_load_report_summary(self):
        outcomes = [
            QueryOutcome("a", "fd", {}, "ok", latency_seconds=0.2),
            QueryOutcome("b", "dc", {}, "error", latency_seconds=0.4),
        ]
        report = LoadReport(outcomes, elapsed_seconds=0.5)
        summary = report.summary()
        assert summary["queries"] == 2.0
        assert summary["ok"] == 1.0
        assert report.throughput_qps == pytest.approx(4.0)
        assert report.p50_seconds == pytest.approx(0.3)
        assert not report.all_ok
