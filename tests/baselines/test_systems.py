"""Unit tests for the three evaluated systems and their restrictions."""

import pytest

from repro.baselines import BigDansingSystem, CleanDBSystem, SparkSQLSystem
from repro.datasets import generate_customer, generate_lineitem, rule_phi, rule_psi

LI = generate_lineitem(15)
LHS, RHS = rule_phi()


class TestFDAcrossSystems:
    def test_all_find_same_violations(self):
        counts = {
            cls.name: cls(num_nodes=4).check_fd(LI, LHS, RHS).output_count
            for cls in (CleanDBSystem, SparkSQLSystem, BigDansingSystem)
        }
        assert len(set(counts.values())) == 1

    def test_cleandb_fastest_sparksql_second(self):
        times = {
            cls.name: cls(num_nodes=4).check_fd(LI, LHS, RHS).simulated_time
            for cls in (CleanDBSystem, SparkSQLSystem, BigDansingSystem)
        }
        assert times["CleanDB"] < times["SparkSQL"] < times["BigDansing"]

    def test_bigdansing_rejects_computed_attributes(self):
        result = BigDansingSystem(num_nodes=4).check_fd(
            LI, [lambda r: str(r["orderkey"])[:2]], RHS
        )
        assert result.status == "unsupported"

    def test_bigdansing_rejects_columnar_input(self):
        result = BigDansingSystem(num_nodes=4).check_fd(LI, LHS, RHS, fmt="columnar")
        assert result.status == "unsupported"

    def test_columnar_faster_than_csv(self):
        s = CleanDBSystem(num_nodes=4)
        csv_run = s.check_fd(LI, LHS, RHS, fmt="csv")
        col_run = s.check_fd(LI, LHS, RHS, fmt="columnar")
        assert col_run.simulated_time < csv_run.simulated_time


class TestDCAcrossSystems:
    def test_only_cleandb_completes_under_budget(self):
        prices = sorted(r["price"] for r in LI)
        psi = rule_psi(price_cap=prices[len(prices) // 100])
        budget = 60_000
        cleandb = CleanDBSystem(num_nodes=10, budget=budget).check_dc(LI, psi)
        spark = SparkSQLSystem(num_nodes=10, budget=budget).check_dc(LI, psi)
        bigd = BigDansingSystem(num_nodes=10, budget=budget).check_dc(LI, psi)
        assert cleandb.status == "ok"
        assert spark.status == "budget_exceeded"
        assert bigd.status == "budget_exceeded"

    def test_matrix_and_cartesian_agree_without_budget(self):
        small = LI[:120]
        prices = sorted(r["price"] for r in small)
        psi = rule_psi(price_cap=prices[5])
        a = CleanDBSystem(num_nodes=4).check_dc(small, psi)
        b = SparkSQLSystem(num_nodes=4).check_dc(small, psi)
        assert a.output_count == b.output_count > 0


class TestDedupAcrossSystems:
    def test_customer_dedup_all_systems(self):
        data = generate_customer(num_customers=60, max_duplicates=5, seed=3)
        for cls in (CleanDBSystem, SparkSQLSystem, BigDansingSystem):
            run = cls(num_nodes=4).deduplicate(
                data.records, ["name", "phone"], block_on="custkey", theta=0.5
            )
            assert run.ok and run.output_count > 0

    def test_bigdansing_rejects_non_customer(self):
        run = BigDansingSystem(num_nodes=4).deduplicate(
            [{"title": "a"}, {"title": "a"}], ["title"]
        )
        assert run.status == "unsupported"
        assert "customer" in run.reason

    def test_cleandb_scales_better_on_skewed_duplicates(self):
        # At tiny scale CleanDB's planning/statistics overhead dominates
        # (the Fig. 7 small-input effect); from a few hundred customers with
        # heavy Zipf duplication, the skew-resilient grouping wins it back.
        data = generate_customer(num_customers=600, max_duplicates=40, seed=9)
        fast = CleanDBSystem(num_nodes=10).deduplicate(
            data.records, ["name"], block_on="address", theta=0.5
        )
        slow = SparkSQLSystem(num_nodes=10).deduplicate(
            data.records, ["name"], block_on="address", theta=0.5
        )
        assert fast.simulated_time < slow.simulated_time


class TestTermValidationAcrossSystems:
    TERMS = [f"word number {i}" for i in range(30)] + ["wrod number 1"]
    DICT = [f"word number {i}" for i in range(30)]

    def test_cleandb_supports(self):
        run = CleanDBSystem(num_nodes=4).validate_terms(self.TERMS, self.DICT, q=2)
        assert run.ok

    def test_sparksql_cross_product_blows_budget(self):
        run = SparkSQLSystem(num_nodes=4, budget=3_000).validate_terms(
            self.TERMS * 20, self.DICT * 10
        )
        assert run.status == "budget_exceeded"

    def test_bigdansing_unsupported(self):
        run = BigDansingSystem(num_nodes=4).validate_terms(self.TERMS, self.DICT)
        assert run.status == "unsupported"

    def test_cleandb_prunes_comparisons_vs_sparksql(self):
        fast = CleanDBSystem(num_nodes=4).validate_terms(self.TERMS, self.DICT, q=3)
        slow = SparkSQLSystem(num_nodes=4).validate_terms(self.TERMS, self.DICT)
        assert fast.comparisons < slow.comparisons


class TestRunResult:
    def test_as_row_hides_metrics_on_failure(self):
        from repro.evaluation import RunResult

        row = RunResult(system="X", status="budget_exceeded").as_row()
        assert row["sim_time"] is None

    def test_ok_flag(self):
        from repro.evaluation import RunResult

        assert RunResult(system="X", status="ok").ok
        assert RunResult.unsupported("Y").failed
