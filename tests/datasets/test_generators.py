"""Unit tests for the workload generators and noise injection."""

import random

import pytest

from repro.cleaning import levenshtein_similarity
from repro.datasets import (
    author_pool,
    generate_customer,
    generate_dblp,
    generate_lineitem,
    generate_mag,
    inject_string_noise,
    inject_value_noise,
    perturb_string,
    rule_phi,
    rule_psi,
    zipf_int,
)


class TestNoise:
    def test_perturb_changes_string(self):
        rng = random.Random(1)
        for word in ("hello", "a", "some longer phrase"):
            assert perturb_string(word, 0.2, rng) != word

    def test_perturb_rate_zero_identity(self):
        rng = random.Random(1)
        assert perturb_string("same", 0.0, rng) == "same"

    def test_perturb_respects_rate_roughly(self):
        rng = random.Random(2)
        word = "abcdefghijklmnopqrst"  # 20 chars
        light = perturb_string(word, 0.1, rng)
        assert levenshtein_similarity(word, light) >= 0.8

    def test_inject_string_noise_fraction(self):
        records = [{"name": f"name number {i}"} for i in range(100)]
        noisy, edits = inject_string_noise(records, "name", 0.2, 0.2, seed=3)
        assert len(edits) == 20
        assert all(noisy[i]["name"] == dirty for i, (_, dirty) in edits.items())

    def test_inject_string_noise_deterministic(self):
        records = [{"name": f"n{i}"} for i in range(50)]
        a = inject_string_noise(records, "name", 0.1, 0.3, seed=9)
        b = inject_string_noise(records, "name", 0.1, 0.3, seed=9)
        assert a == b

    def test_inject_value_noise_uses_domain(self):
        records = [{"k": 10_000 + i} for i in range(100)]
        noisy, edited = inject_value_noise(records, "k", 0.3, [1, 2, 3], seed=5)
        assert len(edited) == 30
        assert all(noisy[i]["k"] in (1, 2, 3) for i in edited)

    def test_zipf_int_bounds(self):
        rng = random.Random(1)
        values = [zipf_int(rng, 1.5, 1, 50) for _ in range(500)]
        assert min(values) >= 1 and max(values) <= 50

    def test_zipf_int_is_skewed(self):
        rng = random.Random(1)
        values = [zipf_int(rng, 1.5, 1, 50) for _ in range(2000)]
        ones = sum(1 for v in values if v == 1)
        assert ones > len(values) * 0.2


class TestLineitem:
    def test_row_count_scales(self):
        assert len(generate_lineitem(30)) == 2 * len(generate_lineitem(15))

    def test_deterministic(self):
        assert generate_lineitem(15) == generate_lineitem(15)

    def test_noise_domain_is_base_sf(self):
        from repro.datasets.tpch import BASE_SF, ROWS_PER_SF

        li = generate_lineitem(70)
        base_orders = BASE_SF * ROWS_PER_SF // 4
        assert all(r["orderkey"] <= 70 * ROWS_PER_SF // 4 + 1 for r in li)
        # noise pushed 10% of keys into the base domain, creating collisions
        small = sum(1 for r in li if r["orderkey"] <= base_orders)
        assert small > len(li) * 0.25

    def test_fd_violations_exist(self):
        from repro.cleaning import check_fd
        from repro.engine import Cluster

        li = generate_lineitem(15)
        lhs, rhs = rule_phi()
        c = Cluster(num_nodes=4)
        violations = check_fd(c.parallelize(li), lhs, rhs).collect()
        assert violations

    def test_discount_noise_column(self):
        li = generate_lineitem(15, noise_column="discount")
        assert all(0 <= r["discount"] <= 0.1 for r in li)

    def test_unknown_noise_column(self):
        with pytest.raises(ValueError):
            generate_lineitem(15, noise_column="suppkey")

    def test_rule_psi_structure(self):
        psi = rule_psi(price_cap=1000.0)
        assert psi.left_filters[0].value == 1000.0
        assert len(psi.predicates) == 2


class TestCustomer:
    def test_duplicates_created_with_ground_truth(self):
        data = generate_customer(num_customers=100, seed=5)
        assert len(data.records) > 100
        assert data.duplicate_pairs
        rids = {r["_rid"] for r in data.records}
        assert all(a in rids and b in rids for a, b in data.duplicate_pairs)

    def test_duplicates_similar_to_originals(self):
        data = generate_customer(num_customers=50, seed=7)
        by_rid = {r["_rid"]: r for r in data.records}
        for a, b in list(data.duplicate_pairs)[:20]:
            sim = levenshtein_similarity(by_rid[a]["name"], by_rid[b]["name"])
            assert sim > 0.5

    def test_max_duplicates_respected(self):
        data = generate_customer(num_customers=50, max_duplicates=3, seed=7)
        from collections import Counter

        counts = Counter()
        for a, b in data.duplicate_pairs:
            counts[a] += 1
        # a cluster of size 1+3 yields at most C(4,2)=6 pairs
        assert all(v <= 6 for v in counts.values())


class TestDBLP:
    def test_nested_authors(self):
        data = generate_dblp(num_publications=50, num_authors=20, seed=2)
        assert all(isinstance(r["authors"], list) for r in data.records)

    def test_dictionary_is_clean_pool(self):
        data = generate_dblp(num_publications=50, num_authors=20, seed=2)
        assert len(data.dictionary) == 20

    def test_dirty_names_ground_truth(self):
        data = generate_dblp(num_publications=200, num_authors=40, seed=2)
        assert data.dirty_names
        for dirty, clean in data.dirty_names.items():
            assert clean in data.dictionary
            assert dirty not in data.dictionary

    def test_noise_rate_controls_similarity(self):
        light = generate_dblp(num_publications=200, noise_rate=0.2, seed=3)
        heavy = generate_dblp(num_publications=200, noise_rate=0.4, seed=3)
        def mean_sim(d):
            sims = [
                levenshtein_similarity(dirty, clean)
                for dirty, clean in d.dirty_names.items()
            ]
            return sum(sims) / len(sims)
        assert mean_sim(heavy) < mean_sim(light)

    def test_duplicates_share_title_and_journal(self):
        data = generate_dblp(num_publications=100, dup_fraction=0.2, seed=4)
        assert data.duplicate_pairs
        for a, b in data.duplicate_pairs:
            assert data.records[a]["title"] == data.records[b]["title"]
            assert data.records[a]["journal"] == data.records[b]["journal"]

    def test_uniform_titles_unique(self):
        data = generate_dblp(num_publications=100, uniform_titles=True, seed=5)
        titles = [r["title"] for r in data.records]
        assert len(set(titles)) == len(titles)

    def test_skewed_titles_repeat(self):
        data = generate_dblp(num_publications=200, uniform_titles=False, seed=5)
        titles = [r["title"] for r in data.records]
        assert len(set(titles)) < len(titles) / 2


class TestMAG:
    def test_duplicates_with_ground_truth(self):
        data = generate_mag(num_papers=200, seed=6)
        assert data.duplicate_pairs
        for a, b in list(data.duplicate_pairs)[:20]:
            assert data.records[a]["year"] == data.records[b]["year"]
            assert data.records[a]["author_id"] == data.records[b]["author_id"]

    def test_missing_fields_injected(self):
        data = generate_mag(num_papers=400, seed=6)
        assert any(
            r["doi"] is None or r["affiliation"] is None or r["rank"] is None
            for r in data.records
        )

    def test_year_subset(self):
        data = generate_mag(num_papers=300, seed=6)
        subset = data.year_subset(2010)
        assert subset.records
        assert all(r["year"] == 2010 for r in subset.records)
        rids = {r["_rid"] for r in subset.records}
        assert all(a in rids and b in rids for a, b in subset.duplicate_pairs)

    def test_author_skew(self):
        from collections import Counter

        data = generate_mag(num_papers=500, seed=6)
        counts = Counter(r["author_id"] for r in data.records)
        top = counts.most_common(1)[0][1]
        assert top > len(data.records) / 25  # far above uniform


class TestAuthorPool:
    def test_distinct(self):
        pool = author_pool(100, seed=1)
        assert len(set(pool)) == 100

    def test_deterministic(self):
        assert author_pool(50, seed=2) == author_pool(50, seed=2)
