"""Unit + differential tests for the Code Generator (Fig. 2)."""

import pytest

from repro.algebra import Join, Nest, Reduce, Scan, Select, Translator, Unnest
from repro.engine import Cluster, Dataset
from repro.errors import PlanningError
from repro.monoid import (
    BagMonoid,
    BinOp,
    Call,
    Const,
    CountMonoid,
    If,
    Proj,
    RecordCons,
    SetMonoid,
    SumMonoid,
    UnaryOp,
    Var,
)
from repro.physical import Executor, PhysicalConfig
from repro.physical.codegen import compile_expr, generate_code
from repro.physical.functions import DEFAULT_FUNCTIONS

PEOPLE = [
    {"name": "ann", "dept": "db", "salary": 10},
    {"name": "bob", "dept": "db", "salary": 20},
    {"name": "cal", "dept": "os", "salary": 30},
]


class TestCompileExpr:
    def test_const(self):
        assert compile_expr(Const(5)) == "5"
        assert compile_expr(Const("x")) == "'x'"

    def test_var_and_proj(self):
        expr = Proj(Var("c"), "name")
        assert compile_expr(expr) == "env['c']['name']"

    def test_binop(self):
        expr = BinOp(">", Proj(Var("c"), "age"), Const(3))
        assert compile_expr(expr) == "(env['c']['age'] > 3)"

    def test_boolean_ops(self):
        expr = BinOp("and", Const(True), UnaryOp("not", Const(False)))
        assert eval(compile_expr(expr), {"env": {}}) is True

    def test_call_goes_through_registry(self):
        expr = Call("prefix", (Proj(Var("c"), "phone"),))
        code = compile_expr(expr)
        assert code == "F['prefix'](env['c']['phone'])"

    def test_record_cons(self):
        expr = RecordCons.of(a=Const(1), b=Var("x"))
        value = eval(compile_expr(expr), {"env": {"x": 2}})
        assert value == {"a": 1, "b": 2}

    def test_if_expression(self):
        expr = If(Const(True), Const("t"), Const("e"))
        assert eval(compile_expr(expr), {"env": {}}) == "t"

    def test_unsupported_op_rejected(self):
        with pytest.raises(PlanningError):
            compile_expr(BinOp("**", Const(2), Const(3)))


def run_both(plan, catalog, config=None):
    """Execute a plan through the interpreter and the generated code."""
    interpreted = Executor(
        Cluster(num_nodes=4), catalog, config=config
    ).execute(plan)
    generated = generate_code(plan, config).run(
        Cluster(num_nodes=4), catalog, DEFAULT_FUNCTIONS
    )
    return interpreted, generated


def canon(value):
    if isinstance(value, Dataset):
        value = value.collect()
    if isinstance(value, list):
        return sorted(value, key=repr)
    if isinstance(value, dict):
        return {k: canon(v) for k, v in value.items()}
    return value


class TestGeneratedPlansMatchInterpreter:
    def test_scan_select_reduce(self):
        plan = Reduce(
            Select(
                Scan("people", "p"),
                BinOp(">", Proj(Var("p"), "salary"), Const(15)),
            ),
            BagMonoid(),
            Proj(Var("p"), "name"),
        )
        a, b = run_both(plan, {"people": PEOPLE})
        assert canon(a) == canon(b) == ["bob", "cal"]

    def test_primitive_reduce(self):
        plan = Reduce(Scan("people", "p"), SumMonoid(), Proj(Var("p"), "salary"))
        a, b = run_both(plan, {"people": PEOPLE})
        assert a == b == 60

    def test_set_reduce(self):
        plan = Reduce(Scan("people", "p"), SetMonoid(), Proj(Var("p"), "dept"))
        a, b = run_both(plan, {"people": PEOPLE})
        assert canon(a) == canon(b) == ["db", "os"]

    def test_equi_join(self):
        depts = [{"id": "db", "floor": 1}, {"id": "os", "floor": 2}]
        plan = Reduce(
            Join(
                Scan("people", "p"),
                Scan("depts", "d"),
                left_keys=(Proj(Var("p"), "dept"),),
                right_keys=(Proj(Var("d"), "id"),),
            ),
            BagMonoid(),
            RecordCons.of(n=Proj(Var("p"), "name"), f=Proj(Var("d"), "floor")),
        )
        a, b = run_both(plan, {"people": PEOPLE, "depts": depts})
        assert canon(a) == canon(b)
        assert len(canon(a)) == 3

    def test_theta_join(self):
        plan = Reduce(
            Join(
                Scan("people", "p1"),
                Scan("people", "p2"),
                predicate=BinOp(
                    "<", Proj(Var("p1"), "salary"), Proj(Var("p2"), "salary")
                ),
            ),
            CountMonoid(),
            Const(1),
        )
        a, b = run_both(plan, {"people": PEOPLE})
        assert a == b == 3

    def test_nest_aggregate(self):
        plan = Nest(
            child=Scan("people", "p"),
            key=Proj(Var("p"), "dept"),
            aggregates=(
                ("total", SumMonoid(), Proj(Var("p"), "salary")),
                ("cnt", CountMonoid(), Var("p")),
            ),
            var="g",
        )
        a, b = run_both(plan, {"people": PEOPLE})
        def norm(ds):
            return sorted(
                (env["g"]["key"], env["g"]["total"], env["g"]["cnt"])
                for env in ds.collect()
            )
        assert norm(a) == norm(b) == [("db", 30, 2), ("os", 30, 1)]

    @pytest.mark.parametrize("grouping", ["aggregate", "sort", "hash"])
    def test_nest_all_strategies(self, grouping):
        config = PhysicalConfig(grouping=grouping)
        plan = Nest(
            child=Scan("people", "p"),
            key=Proj(Var("p"), "dept"),
            aggregates=(("total", SumMonoid(), Proj(Var("p"), "salary")),),
            var="g",
        )
        a, b = run_both(plan, {"people": PEOPLE}, config)
        key = lambda ds: sorted(
            (env["g"]["key"], env["g"]["total"]) for env in ds.collect()
        )
        assert key(a) == key(b)

    def test_unnest(self):
        catalog = {
            "pubs": [
                {"title": "t1", "authors": ["a", "b"]},
                {"title": "t2", "authors": []},
            ]
        }
        plan = Reduce(
            Unnest(Scan("pubs", "p"), Proj(Var("p"), "authors"), "a"),
            BagMonoid(),
            Var("a"),
        )
        a, b = run_both(plan, catalog)
        assert canon(a) == canon(b) == ["a", "b"]

    def test_outer_unnest(self):
        catalog = {"pubs": [{"title": "t", "authors": []}]}
        plan = Reduce(
            Unnest(
                Scan("pubs", "p"), Proj(Var("p"), "authors"), "a", outer=True
            ),
            CountMonoid(),
            Const(1),
        )
        a, b = run_both(plan, catalog)
        assert a == b == 1


class TestGeneratedSource:
    def test_source_is_readable_python(self):
        plan = Reduce(Scan("people", "p"), SumMonoid(), Proj(Var("p"), "salary"))
        generated = generate_code(plan)
        assert generated.source.startswith("def run(cluster, catalog, F, M):")
        compile(generated.source, "<test>", "exec")  # must be valid Python

    def test_expressions_are_inlined_not_interpreted(self):
        plan = Select(
            Scan("people", "p"),
            BinOp(">", Proj(Var("p"), "salary"), Const(15)),
        )
        source = generate_code(plan).source
        assert "env['p']['salary'] > 15" in source
        assert "evaluate(" not in source

    def test_shared_nest_emitted_once_in_dag(self):
        from repro.core.parser import parse
        from repro.core.rewriter import rewrite_query
        from repro.algebra import optimize_branches
        from repro.monoid import normalize

        branches = rewrite_query(
            parse("SELECT * FROM people c FD(c.dept, c.salary) FD(c.dept, c.name)")
        )
        translator = Translator({"people"})
        plans = [translator.translate(normalize(b.comprehension)) for b in branches]
        dag, report = optimize_branches(plans, [b.name for b in branches])
        assert report.coalesced_groups
        source = generate_code(dag).source
        # The coalesced Nest appears once even though two branches use it.
        assert source.count("nest:aggregateByKey") == 1
