"""Unit tests for the multi-process backend's seam: claiming, fallback,
error transport, and budget aborts through the executor.

Cross-backend result parity lives in the unified harness
(`tests/integration/test_backend_parity.py`); this file covers the
mechanics specific to `ParallelExecutor`.
"""

import pytest

from repro.algebra import Join, Nest, Reduce, Scan, Select, Unnest
from repro.engine import Cluster
from repro.errors import BudgetExceededError
from repro.monoid import BinOp, Call, Const, Proj, SumMonoid, Var
from repro.physical import Executor, ParallelExecutor, PhysicalConfig

ROWS = [{"k": i % 5, "v": float(i)} for i in range(40)]


def _explode(value):
    """Module-level (picklable) function that fails on one input."""
    if value == 7.0:
        raise ValueError("explode at 7")
    return value


def _parallel_executor(catalog, **cluster_kwargs):
    cluster = Cluster(num_nodes=4, workers=2, **cluster_kwargs)
    ex = Executor(cluster, catalog, config=PhysicalConfig(execution="parallel"))
    return ex, ParallelExecutor(ex)


class TestSupports:
    def test_supported_shapes_claimed(self):
        ex, par = _parallel_executor({"t": ROWS})
        plan = Nest(
            Select(Scan("t", "r"), BinOp(">", Proj(Var("r"), "v"), Const(3.0))),
            key=Proj(Var("r"), "k"),
            aggregates=(("s", SumMonoid(), Proj(Var("r"), "v")),),
            var="g",
        )
        assert par.supports(plan)
        ex.cluster.shutdown()

    def test_theta_join_not_claimed(self):
        ex, par = _parallel_executor({"t": ROWS})
        theta = Join(
            Scan("t", "a"),
            Scan("t", "b"),
            predicate=BinOp("<", Proj(Var("a"), "v"), Proj(Var("b"), "v")),
        )
        assert not par.supports(theta)
        ex.cluster.shutdown()

    def test_unnest_not_claimed_but_executes_via_fallback(self):
        nested = [{"id": i, "tags": [f"t{i}", f"t{i+1}"]} for i in range(10)]
        cluster = Cluster(num_nodes=2, workers=2)
        ex = Executor(cluster, {"t": nested}, config=PhysicalConfig(execution="parallel"))
        plan = Unnest(
            Select(Scan("t", "r"), BinOp("<", Proj(Var("r"), "id"), Const(8))),
            path=Proj(Var("r"), "tags"),
            var="tag",
        )
        assert not ex._parallel_executor().supports(plan)
        out = ex.execute(plan).collect()
        row = Executor(Cluster(num_nodes=2), {"t": nested}).execute(plan).collect()
        assert sorted(map(repr, out)) == sorted(map(repr, row))
        # The Select/Scan subtree still ran on the pool under the row Unnest.
        assert cluster.metrics.measured_time > 0.0
        cluster.shutdown()

    def test_dataset_source_not_claimed(self):
        cluster = Cluster(num_nodes=2, workers=2)
        ds = cluster.parallelize(ROWS, name="t")
        ex = Executor(cluster, {"t": ds}, config=PhysicalConfig(execution="parallel"))
        assert not ex._parallel_executor().supports(Scan("t", "r"))
        # Execution still works via the row path.
        assert len(ex.execute(Scan("t", "r")).collect()) == len(ROWS)
        cluster.shutdown()

    def test_unpicklable_function_not_claimed(self):
        ex, par = _parallel_executor({"t": ROWS})
        ex.functions["closure"] = lambda v: v + 1  # not shippable
        par = ParallelExecutor(ex)  # rebuild to re-scan functions
        plan = Select(
            Scan("t", "r"),
            BinOp(">", Call("closure", (Proj(Var("r"), "v"),)), Const(3.0)),
        )
        assert not par.supports(plan)
        # The row path still evaluates the closure fine.
        assert ex.execute(plan).count() > 0
        ex.cluster.shutdown()

    def test_late_unpicklable_record_not_claimed(self):
        # The unpicklable value sits past any sample prefix: the whole list
        # must be checked, or dispatch would die with a raw pickling error.
        rows = [{"a": i} for i in range(10)] + [{"a": lambda: None}]
        cluster = Cluster(num_nodes=2, workers=2)
        ex = Executor(cluster, {"t": rows}, config=PhysicalConfig(execution="parallel"))
        assert not ex._parallel_executor().supports(Scan("t", "r"))
        assert len(ex.execute(Scan("t", "r")).collect()) == len(rows)
        assert not cluster.has_pool
        cluster.shutdown()

    def test_cleaning_fast_paths_fall_back_on_late_unpicklable_record(self):
        from repro.cleaning.dedup import deduplicate_parallel
        from repro.cleaning.denial import check_fd_parallel

        rows = [
            {"addr": f"a{i % 3}", "nation": i % 2, "name": f"n{i}", "_rid": i}
            for i in range(10)
        ]
        rows.append({**rows[0], "_rid": 10, "blob": lambda: None})
        cluster = Cluster(num_nodes=2, workers=2)
        violations = check_fd_parallel(cluster, rows, ["addr"], ["nation"]).collect()
        assert violations  # row-path fallback still computes the answer
        pairs = deduplicate_parallel(
            cluster, rows, ["name"], theta=0.1, block_on="addr"
        ).collect()
        assert pairs
        assert not cluster.has_pool  # neither path touched the pool
        cluster.shutdown()

    def test_sort_grouping_not_claimed(self):
        cluster = Cluster(num_nodes=2, workers=2)
        ex = Executor(
            cluster,
            {"t": ROWS},
            config=PhysicalConfig(execution="parallel", grouping="sort"),
        )
        plan = Nest(
            Scan("t", "r"),
            key=Proj(Var("r"), "k"),
            aggregates=(("s", SumMonoid(), Proj(Var("r"), "v")),),
            var="g",
        )
        assert not ex._parallel_executor().supports(plan)
        cluster.shutdown()


class TestErrorPaths:
    def test_worker_error_surfaces_original_exception(self):
        cluster = Cluster(num_nodes=4, workers=2)
        ex = Executor(
            cluster,
            {"t": ROWS},
            config=PhysicalConfig(execution="parallel"),
            functions={"explode": _explode},
        )
        plan = Select(
            Scan("t", "r"),
            BinOp(">", Call("explode", (Proj(Var("r"), "v"),)), Const(0.0)),
        )
        assert ex._parallel_executor().supports(plan)
        with pytest.raises(ValueError, match="explode at 7"):
            ex.execute(plan)
        cluster.shutdown()

    def test_budget_exceeded_abort_is_query_scoped(self):
        cluster = Cluster(num_nodes=4, workers=2, budget=5.0)
        ex = Executor(cluster, {"t": ROWS}, config=PhysicalConfig(execution="parallel"))
        with pytest.raises(BudgetExceededError):
            ex.execute(Scan("t", "r"))
        # The abort discards the failed query's work but never the pool:
        # other queries (tenants) keep their resident state.
        assert cluster.has_pool
        cluster.shutdown()
        assert not cluster.has_pool


class TestMeasuredMetrics:
    def test_parallel_records_wall_clock_and_same_simulated_shape(self):
        plan = Nest(
            Scan("t", "r"),
            key=Proj(Var("r"), "k"),
            aggregates=(("s", SumMonoid(), Proj(Var("r"), "v")),),
            var="g",
        )
        row_cluster = Cluster(num_nodes=4)
        Executor(row_cluster, {"t": ROWS}).execute(plan)
        par_cluster = Cluster(num_nodes=4, workers=2)
        Executor(
            par_cluster, {"t": ROWS}, config=PhysicalConfig(execution="parallel")
        ).execute(plan)
        par_cluster.shutdown()
        assert row_cluster.metrics.measured_time == 0.0
        assert par_cluster.metrics.measured_time > 0.0
        # Both backends moved the same records through the wide dependency.
        assert (
            row_cluster.metrics.shuffled_records
            == par_cluster.metrics.shuffled_records
        )
