"""Row-path vs vectorized-path parity: identical results, different costs.

These are the shared tests the dispatcher relies on: every plan shape the
columnar backend claims (filter, equi-join, nest/aggregate, reduce) must
produce exactly the row path's output on every storage format that can feed
it (CSV, JSON, and the binary columnar format), and unsupported shapes must
fall back without changing results.
"""

import pytest

from repro.algebra import Join, Nest, Reduce, Scan, Select, Unnest
from repro.cleaning.dedup import deduplicate, deduplicate_columnar
from repro.cleaning.denial import check_fd, check_fd_columnar
from repro.engine import Cluster
from repro.monoid import (
    BagMonoid,
    BinOp,
    Call,
    Const,
    CountMonoid,
    Proj,
    SetMonoid,
    SumMonoid,
    Var,
)
from repro.physical import Executor, PhysicalConfig
from repro.physical.vectorized import VectorizedExecutor
from repro.sources import Catalog, Field, Schema, write_records

ORDERS = [
    {"okey": i, "cust": f"c{i % 7}", "price": float(100 + 13 * (i % 11)), "qty": i % 5 + 1}
    for i in range(60)
]
CUSTOMERS = [
    {"id": f"c{i}", "nation": f"n{i % 3}", "segment": "retail" if i % 2 else "corp"}
    for i in range(7)
]

ORDERS_SCHEMA = Schema(
    (Field("okey", "int"), Field("cust", "str"), Field("price", "float"), Field("qty", "int"))
)
CUSTOMERS_SCHEMA = Schema(
    (Field("id", "str"), Field("nation", "str"), Field("segment", "str"))
)


def _materialized_tables(tmp_path, fmt):
    """Round-trip both tables through a storage format, returning records."""
    catalog = Catalog()
    for name, records, schema in (
        ("orders", ORDERS, ORDERS_SCHEMA),
        ("customers", CUSTOMERS, CUSTOMERS_SCHEMA),
    ):
        path = tmp_path / f"{name}.{fmt}"
        write_records(path, records, fmt, schema)
        catalog.register(name, path, fmt, schema)
    return {name: catalog.load(name) for name in ("orders", "customers")}


def _run(tables, plan, execution, fmt):
    config = PhysicalConfig(execution=execution)
    ex = Executor(Cluster(num_nodes=4), dict(tables), config=config)
    result = ex.execute(plan)
    return result, ex


def _normalize(result):
    from repro.engine.dataset import Dataset

    if isinstance(result, Dataset):
        return sorted(map(repr, result.collect()))
    if isinstance(result, dict):
        return {k: _normalize(v) for k, v in result.items()}
    return result


FILTER_PLAN = Select(
    Scan("orders", "o", fmt="memory"),
    BinOp(
        "and",
        BinOp(">", Proj(Var("o"), "price"), Const(120.0)),
        BinOp("<", Proj(Var("o"), "qty"), Const(5)),
    ),
)

JOIN_PLAN = Join(
    Select(
        Scan("orders", "o"),
        BinOp(">", Proj(Var("o"), "price"), Const(110.0)),
    ),
    Scan("customers", "c"),
    left_keys=(Proj(Var("o"), "cust"),),
    right_keys=(Proj(Var("c"), "id"),),
)

NEST_PLAN = Nest(
    Scan("orders", "o"),
    key=Proj(Var("o"), "cust"),
    aggregates=(
        ("total", SumMonoid(), Proj(Var("o"), "price")),
        ("n", CountMonoid(), Var("o")),
    ),
    group_predicate=BinOp(">", Proj(Var("g"), "n"), Const(2)),
    var="g",
)


@pytest.mark.parametrize("fmt", ["csv", "json", "columnar"])
@pytest.mark.parametrize(
    "plan", [FILTER_PLAN, JOIN_PLAN, NEST_PLAN], ids=["filter", "join", "nest"]
)
def test_row_vectorized_parity_across_formats(tmp_path, fmt, plan):
    tables = _materialized_tables(tmp_path, fmt)
    row_result, _ = _run(tables, plan, "row", fmt)
    vec_result, vec_ex = _run(tables, plan, "vectorized", fmt)
    assert _normalize(row_result) == _normalize(vec_result)
    # The vectorized run actually took the columnar path.
    assert vec_ex.cluster.metrics.batches_processed > 0


@pytest.mark.parametrize("fmt", ["csv", "json", "columnar"])
def test_reduce_parity_across_formats(tmp_path, fmt):
    tables = _materialized_tables(tmp_path, fmt)
    for monoid, head in (
        (SumMonoid(), Proj(Var("o"), "price")),
        (CountMonoid(), Var("o")),
        (BagMonoid(), Proj(Var("o"), "cust")),
        (SetMonoid(), Proj(Var("o"), "cust")),
    ):
        plan = Reduce(Scan("orders", "o"), monoid, head)
        row_result, _ = _run(tables, plan, "row", fmt)
        vec_result, _ = _run(tables, plan, "vectorized", fmt)
        assert _normalize(row_result) == _normalize(vec_result)


class TestShortCircuit:
    """``and``/``or`` must guard the right side exactly like the row path."""

    ROWS = [
        {"kind": 1, "val": 5},
        {"kind": 0, "val": "oops"},  # comparing this with < 10 would raise
        {"kind": 1, "val": 50},
    ]

    def _both(self, predicate):
        plan = Select(Scan("t", "r"), predicate)
        row = Executor(Cluster(num_nodes=2), {"t": self.ROWS}).execute(plan)
        vec = Executor(
            Cluster(num_nodes=2),
            {"t": self.ROWS},
            config=PhysicalConfig(execution="vectorized"),
        ).execute(plan)
        return _normalize(row), _normalize(vec)

    def test_and_guards_right_side(self):
        pred = BinOp(
            "and",
            BinOp("==", Proj(Var("r"), "kind"), Const(1)),
            BinOp("<", Proj(Var("r"), "val"), Const(10)),
        )
        row, vec = self._both(pred)
        assert row == vec and len(row) == 1

    def test_or_guards_right_side(self):
        pred = BinOp(
            "or",
            BinOp("==", Proj(Var("r"), "kind"), Const(0)),
            BinOp("<", Proj(Var("r"), "val"), Const(10)),
        )
        # Row 1 ("oops") is decided by the left side; the right side must
        # not be evaluated for it.
        row, vec = self._both(pred)
        assert row == vec and len(row) == 2


class TestCostProfile:
    def test_vectorized_is_cheaper_at_scale(self):
        big = [
            {"k": i % 50, "v": float(i)} for i in range(5000)
        ]
        plan = Nest(
            Scan("t", "r"),
            key=Proj(Var("r"), "k"),
            aggregates=(("s", SumMonoid(), Proj(Var("r"), "v")),),
            var="g",
        )
        row_ex = Executor(Cluster(), {"t": big}, config=PhysicalConfig())
        vec_ex = Executor(
            Cluster(), {"t": big}, config=PhysicalConfig(execution="vectorized")
        )
        assert _normalize(row_ex.execute(plan)) == _normalize(vec_ex.execute(plan))
        assert (
            vec_ex.cluster.metrics.simulated_time
            < row_ex.cluster.metrics.simulated_time
        )

    def test_row_path_records_no_batches(self):
        ex = Executor(Cluster(num_nodes=2), {"t": ORDERS})
        ex.execute(Scan("t", "r"))
        assert ex.cluster.metrics.batches_processed == 0


class TestFallback:
    def test_unnest_plan_falls_back_but_vectorizes_child(self):
        nested = [{"id": i, "tags": [f"t{i}", f"t{i+1}"]} for i in range(10)]
        plan = Unnest(
            Select(Scan("t", "r"), BinOp("<", Proj(Var("r"), "id"), Const(8))),
            path=Proj(Var("r"), "tags"),
            var="tag",
        )
        row_ex = Executor(Cluster(num_nodes=2), {"t": nested})
        vec_ex = Executor(
            Cluster(num_nodes=2),
            {"t": nested},
            config=PhysicalConfig(execution="vectorized"),
        )
        assert _normalize(row_ex.execute(plan)) == _normalize(vec_ex.execute(plan))
        # The Select/Scan subtree still ran vectorized under the row Unnest.
        assert vec_ex.cluster.metrics.batches_processed > 0

    def test_non_uniform_records_not_claimed(self):
        ragged = [{"a": 1}, {"a": 2, "b": 3}]
        ex = Executor(
            Cluster(num_nodes=2),
            {"t": ragged},
            config=PhysicalConfig(execution="vectorized"),
        )
        vec = VectorizedExecutor(ex)
        assert not vec.supports(Scan("t", "r"))
        # Execution still works via the row path.
        assert len(ex.execute(Scan("t", "r")).collect()) == 2

    def test_theta_join_not_claimed(self):
        ex = Executor(
            Cluster(num_nodes=2),
            {"t": ORDERS},
            config=PhysicalConfig(execution="vectorized"),
        )
        vec = VectorizedExecutor(ex)
        theta = Join(
            Scan("t", "a"),
            Scan("t", "b"),
            predicate=BinOp("<", Proj(Var("a"), "okey"), Proj(Var("b"), "okey")),
        )
        assert not vec.supports(theta)

    def test_sort_grouping_not_claimed(self):
        ex = Executor(
            Cluster(num_nodes=2),
            {"t": ORDERS},
            config=PhysicalConfig(execution="vectorized", grouping="sort"),
        )
        vec = VectorizedExecutor(ex)
        assert not vec.supports(NEST_PLAN)


class TestCleaningFastPaths:
    def _fd_data(self):
        return [
            {
                "addr": f"a{i % 9}",
                "phone": f"{i % 9}{i % 4}-555",
                "nation": i % 4,
                "_rid": i,
            }
            for i in range(80)
        ]

    def _norm_violations(self, violations):
        return sorted(
            (
                repr(v.key),
                sorted(map(repr, v.rhs_values)),
                sorted(map(repr, v.records)),
            )
            for v in violations
        )

    def test_fd_columnar_matches_row(self):
        records = self._fd_data()
        row_cluster, vec_cluster = Cluster(4), Cluster(4)
        ds = row_cluster.parallelize(records, fmt="csv", name="t")
        row = check_fd(ds, ["addr"], ["nation"]).collect()
        vec = check_fd_columnar(vec_cluster, records, ["addr"], ["nation"], fmt="csv").collect()
        assert self._norm_violations(row) == self._norm_violations(vec)
        assert vec_cluster.metrics.simulated_time < row_cluster.metrics.simulated_time
        assert vec_cluster.metrics.batches_processed > 0

    def test_fd_columnar_computed_attribute(self):
        records = self._fd_data()
        prefix = lambda r: r["phone"][:1]
        row_cluster, vec_cluster = Cluster(4), Cluster(4)
        ds = row_cluster.parallelize(records, name="t")
        row = check_fd(ds, ["addr"], [prefix]).collect()
        vec = check_fd_columnar(vec_cluster, records, ["addr"], [prefix]).collect()
        assert self._norm_violations(row) == self._norm_violations(vec)

    def test_fd_columnar_heterogeneous_fallback(self):
        ragged = [{"a": 1, "b": 1}, {"a": 1, "c": 2}]
        cluster = Cluster(2)
        out = check_fd_columnar(cluster, ragged, ["a"], ["b"]).collect()
        assert len(out) == 1  # b: 1 vs None (missing) conflict, via row path
        assert cluster.metrics.batches_processed == 0

    def test_dedup_columnar_matches_row(self):
        records = [
            {
                "_rid": i,
                "journal": f"j{i % 3}",
                "title": f"title {i % 10}",
                "pages": f"{i}-{i + 9}",
                "authors": f"author {i % 6}",
            }
            for i in range(40)
        ]
        row_cluster, vec_cluster = Cluster(4), Cluster(4)
        ds = row_cluster.parallelize(records, fmt="json", name="t")
        block = ("journal", "title")
        row = deduplicate(
            ds, ["pages", "authors"], theta=0.3, block_on=block
        ).collect()
        vec = deduplicate_columnar(
            vec_cluster, records, ["pages", "authors"], theta=0.3,
            block_on=block, fmt="json",
        ).collect()
        norm = lambda pairs: sorted((p.left_id, p.right_id, repr(p.left), repr(p.right)) for p in pairs)
        assert norm(row) == norm(vec)
        assert row_cluster.metrics.comparisons == vec_cluster.metrics.comparisons
        assert vec_cluster.metrics.simulated_time < row_cluster.metrics.simulated_time

    def test_dedup_columnar_default_blocking_stringifies(self):
        # Default blocking (no block_on) keys on str(value): 1 and "1" must
        # land in the same block on both backends.
        records = [
            {"_rid": 0, "a": 1, "b": "x"},
            {"_rid": 1, "a": "1", "b": "x"},
            {"_rid": 2, "a": 1, "b": "x"},
        ]
        row_cluster, vec_cluster = Cluster(2), Cluster(2)
        ds = row_cluster.parallelize(records, name="t")
        row = deduplicate(ds, ["a", "b"], theta=0.5).collect()
        vec = deduplicate_columnar(
            vec_cluster, records, ["a", "b"], theta=0.5
        ).collect()
        norm = lambda pairs: sorted((p.left_id, p.right_id) for p in pairs)
        assert norm(row) == norm(vec)
        assert row_cluster.metrics.comparisons == vec_cluster.metrics.comparisons

    def test_dedup_columnar_assigns_rids(self):
        records = [
            {"name": f"x{i % 5}", "city": f"c{i % 2}"} for i in range(20)
        ]
        row_cluster, vec_cluster = Cluster(4), Cluster(4)
        ds = row_cluster.parallelize(records, name="t")
        row = deduplicate(ds, ["name"], theta=0.9, block_on="city").collect()
        vec = deduplicate_columnar(
            vec_cluster, records, ["name"], theta=0.9, block_on="city"
        ).collect()
        norm = lambda pairs: sorted((p.left_id, p.right_id) for p in pairs)
        assert norm(row) == norm(vec)


class TestLanguageLevel:
    def test_fd_query_parity(self):
        from repro import CleanDB

        rows = [
            {
                "name": f"cust{i}",
                "address": f"addr{i % 6}",
                "phone": f"{i % 6}{i % 3}-1234",
            }
            for i in range(50)
        ]
        sql = "SELECT * FROM customer c FD(c.address, c.phone)"
        row_db = CleanDB(num_nodes=4)
        row_db.register_table("customer", rows)
        vec_db = CleanDB(num_nodes=4, execution="vectorized")
        vec_db.register_table("customer", rows)
        row_out = row_db.execute(sql)
        vec_out = vec_db.execute(sql)
        assert set(row_out.branches) == set(vec_out.branches)
        for name in row_out.branches:
            assert sorted(map(repr, row_out.branch(name))) == sorted(
                map(repr, vec_out.branch(name))
            )

    def test_invalid_execution_rejected(self):
        from repro import CleanDB
        from repro.errors import PlanningError

        with pytest.raises(PlanningError):
            CleanDB(execution="gpu")
