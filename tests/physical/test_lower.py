"""Unit tests for the physical executor (algebra → engine, Table 2)."""

import pytest

from repro.algebra import Join, Nest, Reduce, Scan, Select, Unnest
from repro.engine import Cluster
from repro.errors import PlanningError, SchemaError
from repro.monoid import (
    BagMonoid,
    BinOp,
    Call,
    Const,
    CountMonoid,
    Proj,
    SetMonoid,
    SumMonoid,
    Var,
)
from repro.physical import Executor, PhysicalConfig


def executor(catalog, **kwargs):
    return Executor(Cluster(num_nodes=4), catalog, **kwargs)


PEOPLE = [
    {"name": "ann", "dept": "db", "salary": 10},
    {"name": "bob", "dept": "db", "salary": 20},
    {"name": "cal", "dept": "os", "salary": 30},
]
DEPTS = [{"id": "db", "floor": 1}, {"id": "os", "floor": 2}]


class TestScanSelect:
    def test_scan_binds_variable(self):
        ex = executor({"people": PEOPLE})
        out = ex.execute(Scan("people", "p")).collect()
        assert all(set(env) == {"p"} for env in out)

    def test_unknown_table(self):
        with pytest.raises(SchemaError):
            executor({}).execute(Scan("nope", "x"))

    def test_select_filters(self):
        ex = executor({"people": PEOPLE})
        plan = Select(
            Scan("people", "p"),
            BinOp(">", Proj(Var("p"), "salary"), Const(15)),
        )
        assert len(ex.execute(plan).collect()) == 2

    def test_scan_cached_per_table_var(self):
        ex = executor({"people": PEOPLE})
        a = ex.execute(Scan("people", "p"))
        b = ex.execute(Scan("people", "p"))
        assert a is b


class TestReduce:
    def test_sum_reduce_returns_scalar(self):
        ex = executor({"people": PEOPLE})
        plan = Reduce(Scan("people", "p"), SumMonoid(), Proj(Var("p"), "salary"))
        assert ex.execute(plan) == 60

    def test_count_reduce(self):
        ex = executor({"people": PEOPLE})
        plan = Reduce(Scan("people", "p"), CountMonoid(), Var("p"))
        assert ex.execute(plan) == 3

    def test_bag_reduce_returns_dataset(self):
        ex = executor({"people": PEOPLE})
        plan = Reduce(Scan("people", "p"), BagMonoid(), Proj(Var("p"), "name"))
        assert sorted(ex.execute(plan).collect()) == ["ann", "bob", "cal"]

    def test_set_reduce_dedupes(self):
        ex = executor({"people": PEOPLE})
        plan = Reduce(Scan("people", "p"), SetMonoid(), Proj(Var("p"), "dept"))
        assert sorted(ex.execute(plan).collect()) == ["db", "os"]

    def test_reduce_with_predicate(self):
        ex = executor({"people": PEOPLE})
        plan = Reduce(
            Scan("people", "p"),
            SumMonoid(),
            Proj(Var("p"), "salary"),
            predicate=BinOp("==", Proj(Var("p"), "dept"), Const("db")),
        )
        assert ex.execute(plan) == 30


class TestJoin:
    def test_equi_join_merges_envs(self):
        ex = executor({"people": PEOPLE, "depts": DEPTS})
        plan = Join(
            Scan("people", "p"),
            Scan("depts", "d"),
            left_keys=(Proj(Var("p"), "dept"),),
            right_keys=(Proj(Var("d"), "id"),),
        )
        out = ex.execute(plan).collect()
        assert len(out) == 3
        assert all({"p", "d"} <= set(env) for env in out)

    def test_outer_join_keeps_unmatched_left(self):
        ex = executor({"people": PEOPLE, "depts": [{"id": "db", "floor": 1}]})
        plan = Join(
            Scan("people", "p"),
            Scan("depts", "d"),
            left_keys=(Proj(Var("p"), "dept"),),
            right_keys=(Proj(Var("d"), "id"),),
            outer=True,
        )
        out = ex.execute(plan).collect()
        unmatched = [env for env in out if env["d"] is None]
        assert len(unmatched) == 1 and unmatched[0]["p"]["dept"] == "os"

    def test_theta_join_matrix(self):
        ex = executor({"people": PEOPLE})
        plan = Join(
            Scan("people", "p1"),
            Scan("people", "p2"),
            predicate=BinOp(
                "<", Proj(Var("p1"), "salary"), Proj(Var("p2"), "salary")
            ),
        )
        out = ex.execute(plan).collect()
        assert len(out) == 3  # 10<20, 10<30, 20<30

    def test_theta_join_cartesian_config(self):
        ex = executor({"people": PEOPLE}, config=PhysicalConfig(theta="cartesian"))
        plan = Join(
            Scan("people", "p1"),
            Scan("people", "p2"),
            predicate=Const(True),
        )
        assert len(ex.execute(plan).collect()) == 9


class TestUnnest:
    CATALOG = {
        "pubs": [
            {"title": "t1", "authors": ["a", "b"]},
            {"title": "t2", "authors": []},
        ]
    }

    def test_unnest_expands(self):
        ex = executor(self.CATALOG)
        plan = Unnest(Scan("pubs", "p"), Proj(Var("p"), "authors"), "a")
        out = ex.execute(plan).collect()
        assert sorted(env["a"] for env in out) == ["a", "b"]

    def test_outer_unnest_keeps_empty(self):
        ex = executor(self.CATALOG)
        plan = Unnest(
            Scan("pubs", "p"), Proj(Var("p"), "authors"), "a", outer=True
        )
        out = ex.execute(plan).collect()
        assert len(out) == 3
        assert any(env["a"] is None for env in out)

    def test_unnest_with_predicate(self):
        ex = executor(self.CATALOG)
        plan = Unnest(
            Scan("pubs", "p"),
            Proj(Var("p"), "authors"),
            "a",
            predicate=BinOp("==", Var("a"), Const("a")),
        )
        assert len(ex.execute(plan).collect()) == 1


class TestNest:
    def test_grouping_with_aggregates(self):
        ex = executor({"people": PEOPLE})
        plan = Nest(
            child=Scan("people", "p"),
            key=Proj(Var("p"), "dept"),
            aggregates=(
                ("total", SumMonoid(), Proj(Var("p"), "salary")),
                ("members", BagMonoid(), Proj(Var("p"), "name")),
            ),
            var="g",
        )
        out = {env["g"]["key"]: env["g"] for env in ex.execute(plan).collect()}
        assert out["db"]["total"] == 30
        assert sorted(out["db"]["members"]) == ["ann", "bob"]
        assert out["os"]["total"] == 30

    @pytest.mark.parametrize("grouping", ["aggregate", "sort", "hash"])
    def test_strategies_agree(self, grouping):
        ex = executor({"people": PEOPLE}, config=PhysicalConfig(grouping=grouping))
        plan = Nest(
            child=Scan("people", "p"),
            key=Proj(Var("p"), "dept"),
            aggregates=(("total", SumMonoid(), Proj(Var("p"), "salary")),),
            var="g",
        )
        out = {env["g"]["key"]: env["g"]["total"] for env in ex.execute(plan).collect()}
        assert out == {"db": 30, "os": 30}

    def test_multi_key_nest(self):
        ex = executor({"people": PEOPLE})
        plan = Nest(
            child=Scan("people", "p"),
            key=Call("tokenize", (Proj(Var("p"), "dept"), Const(1))),
            aggregates=(("cnt", CountMonoid(), Var("p")),),
            var="g",
        )
        plan.multi = True
        out = {env["g"]["key"]: env["g"]["cnt"] for env in ex.execute(plan).collect()}
        # dept "db" contributes to groups 'd' and 'b'; "os" to 'o' and 's'.
        assert out == {"d": 2, "b": 2, "o": 1, "s": 1}

    def test_group_predicate(self):
        ex = executor({"people": PEOPLE})
        plan = Nest(
            child=Scan("people", "p"),
            key=Proj(Var("p"), "dept"),
            aggregates=(("cnt", CountMonoid(), Var("p")),),
            group_predicate=BinOp(">", Proj(Var("g"), "cnt"), Const(1)),
            var="g",
        )
        out = ex.execute(plan).collect()
        assert len(out) == 1 and out[0]["g"]["key"] == "db"

    def test_unknown_grouping_rejected(self):
        ex = executor({"people": PEOPLE}, config=PhysicalConfig(grouping="magic"))
        plan = Nest(
            child=Scan("people", "p"),
            key=Proj(Var("p"), "dept"),
            aggregates=(("cnt", CountMonoid(), Var("p")),),
        )
        with pytest.raises(PlanningError):
            ex.execute(plan)


class TestFunctions:
    def test_prefix_builtin(self):
        from repro.physical import prefix

        assert prefix("0215551234") == "021"
        assert prefix(12345, 2) == "12"

    def test_registry_extensible(self):
        from repro.physical import DEFAULT_FUNCTIONS, register_function

        register_function("shout", lambda s: str(s).upper())
        assert DEFAULT_FUNCTIONS["shout"]("hi") == "HI"

    def test_distinct_count(self):
        from repro.physical.functions import DEFAULT_FUNCTIONS

        assert DEFAULT_FUNCTIONS["distinct_count"]([1, 1, 2, {"a": 1}, {"a": 1}]) == 3
