"""Unit tests for statistics collection."""

import pytest

from repro.physical import (
    build_histogram,
    collect_key_stats,
    zipf_skew_estimate,
)


class TestHistogram:
    def test_counts_sum_to_total(self):
        h = build_histogram(range(100), num_buckets=10)
        assert h.total == 100

    def test_uniform_spread(self):
        h = build_histogram(range(100), num_buckets=10)
        assert all(c == 10 for c in h.counts)

    def test_bucket_of_bounds(self):
        h = build_histogram(range(100), num_buckets=10)
        assert h.bucket_of(0) == 0
        assert h.bucket_of(99) == 9
        assert h.bucket_of(-5) == 0
        assert h.bucket_of(500) == 9

    def test_selectivity_full_range(self):
        h = build_histogram(range(100), num_buckets=10)
        assert h.selectivity(0, 99) == pytest.approx(1.0)

    def test_selectivity_narrow_range(self):
        h = build_histogram(range(100), num_buckets=10)
        assert h.selectivity(0, 9) <= 0.25

    def test_empty_input(self):
        h = build_histogram([])
        assert h.total == 0
        assert h.selectivity(0, 1) == 0.0

    def test_constant_values(self):
        h = build_histogram([5.0] * 10)
        assert h.counts[0] == 10
        assert h.bucket_of(5.0) == 0


class TestKeyStats:
    def test_uniform_keys_not_skewed(self):
        records = [{"k": i} for i in range(100)]
        stats = collect_key_stats(records, lambda r: r["k"])
        assert stats.distinct == 100
        assert stats.skew_ratio == pytest.approx(1.0)
        assert not stats.is_skewed

    def test_hot_key_detected(self):
        records = [{"k": 0}] * 90 + [{"k": i} for i in range(1, 11)]
        stats = collect_key_stats(records, lambda r: r["k"])
        assert stats.max_frequency == 90
        assert stats.is_skewed
        assert stats.top_keys[0] == (0, 90)

    def test_empty(self):
        stats = collect_key_stats([], lambda r: r)
        assert stats.distinct == 0 and not stats.is_skewed


class TestZipfEstimate:
    def test_uniform_gives_zero(self):
        assert zipf_skew_estimate([10, 10, 10]) == 0.0

    def test_steeper_distribution_higher_estimate(self):
        mild = zipf_skew_estimate([100, 80, 60, 40, 20])
        steep = zipf_skew_estimate([1000, 100, 10, 5, 1])
        assert steep > mild

    def test_short_input(self):
        assert zipf_skew_estimate([5]) == 0.0
