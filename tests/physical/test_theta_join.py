"""Unit tests for the three theta-join strategies (§6)."""

import pytest

from repro.engine import Cluster
from repro.errors import BudgetExceededError
from repro.physical import (
    self_theta_join,
    theta_join_cartesian,
    theta_join_matrix,
    theta_join_minmax,
)


def records(n):
    return [{"id": i, "v": float(i)} for i in range(n)]


def lt(a, b):
    return a["v"] < b["v"]


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


class TestCorrectness:
    def test_matrix_finds_all_pairs(self, cluster):
        left = cluster.parallelize(records(6))
        right = cluster.parallelize(records(6))
        pairs = theta_join_matrix(left, right, lt).collect()
        assert len(pairs) == 15  # C(6,2)

    def test_cartesian_agrees_with_matrix(self):
        c1, c2 = Cluster(num_nodes=4), Cluster(num_nodes=4)
        m = theta_join_matrix(
            c1.parallelize(records(8)), c1.parallelize(records(8)), lt
        ).collect()
        c = theta_join_cartesian(
            c2.parallelize(records(8)), c2.parallelize(records(8)), lt
        ).collect()
        key = lambda pairs: {(a["id"], b["id"]) for a, b in pairs}
        assert key(m) == key(c)

    def test_minmax_agrees_with_matrix(self):
        c1, c2 = Cluster(num_nodes=4), Cluster(num_nodes=4)
        m = theta_join_matrix(
            c1.parallelize(records(8)), c1.parallelize(records(8)), lt
        ).collect()
        mm = theta_join_minmax(
            c2.parallelize(records(8)),
            c2.parallelize(records(8)),
            lt,
            band_key=lambda r: r["v"],
        ).collect()
        key = lambda pairs: {(a["id"], b["id"]) for a, b in pairs}
        assert key(m) == key(mm)

    def test_empty_side_yields_empty(self, cluster):
        left = cluster.parallelize([])
        right = cluster.parallelize(records(5))
        assert theta_join_matrix(left, right, lt).collect() == []


class TestCosts:
    def test_matrix_shuffles_less_than_cartesian(self):
        n = 40
        c_m = Cluster(num_nodes=4)
        theta_join_matrix(c_m.parallelize(records(n)), c_m.parallelize(records(n)), lt)
        c_c = Cluster(num_nodes=4)
        theta_join_cartesian(c_c.parallelize(records(n)), c_c.parallelize(records(n)), lt)
        assert c_m.metrics.shuffled_records < c_c.metrics.shuffled_records

    def test_matrix_work_is_balanced(self, cluster):
        left = cluster.parallelize(records(40))
        right = cluster.parallelize(records(40))
        theta_join_matrix(left, right, lt)
        op = next(o for o in cluster.metrics.ops if o.name == "thetaJoin:matrix")
        assert op.balance > 0.5

    def test_cartesian_exceeds_small_budget(self):
        c = Cluster(num_nodes=4, budget=5_000)
        left = c.parallelize(records(100))
        right = c.parallelize(records(100))
        with pytest.raises(BudgetExceededError):
            theta_join_cartesian(left, right, lt)

    def test_minmax_on_shuffled_data_shuffles_heavily(self):
        # Unaligned partitions overlap fully -> excessive shuffling (§8.3).
        import random

        rows = records(80)
        random.Random(3).shuffle(rows)
        c_mm = Cluster(num_nodes=4)
        theta_join_minmax(
            c_mm.parallelize(rows), c_mm.parallelize(rows), lt, lambda r: r["v"]
        )
        c_m = Cluster(num_nodes=4)
        theta_join_matrix(c_m.parallelize(rows), c_m.parallelize(rows), lt)
        assert c_mm.metrics.simulated_time > c_m.metrics.simulated_time

    def test_comparisons_charged(self, cluster):
        left = cluster.parallelize(records(10))
        right = cluster.parallelize(records(10))
        theta_join_matrix(left, right, lt)
        assert cluster.metrics.comparisons == 100


class TestDispatch:
    def test_self_join_matrix(self, cluster):
        ds = cluster.parallelize(records(5))
        pairs = self_theta_join(ds, lt, strategy="matrix").collect()
        assert len(pairs) == 10

    def test_self_join_minmax_requires_band(self, cluster):
        ds = cluster.parallelize(records(5))
        with pytest.raises(ValueError):
            self_theta_join(ds, lt, strategy="minmax")

    def test_unknown_strategy(self, cluster):
        ds = cluster.parallelize(records(5))
        with pytest.raises(ValueError):
            self_theta_join(ds, lt, strategy="sort-merge")
