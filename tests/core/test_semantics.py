"""The static analyzer: one dedicated test per rejected error class.

Each ``CMxxx`` code the analyzer can emit has at least one test here that
builds the smallest program exhibiting the defect and asserts the exact
code comes back — these are the acceptance contract for ``repro check``.
Happy-path coverage (clean workloads produce zero diagnostics) lives in
``tests/property/test_check_clean.py``.
"""

from dataclasses import replace

import pytest

from repro import CleanDB
from repro.core.semantics import (
    CODES,
    Diagnostic,
    DiagnosticsError,
    SpanFinder,
    TableInfo,
    analyze_dc,
    analyze_query,
    check_monoid_legality,
    errors_in,
    infer_table,
    render_diagnostics,
)
from repro.monoid.comprehension import Comprehension, Generator
from repro.monoid.expressions import Var
from repro.monoid.monoids import ListMonoid
from repro.physical.functions import DEFAULT_FUNCTIONS, register_function

CUSTOMERS = [
    {"name": "ann", "address": "addr0", "phone": "700-0001", "nationkey": 1},
    {"name": "bob", "address": "addr1", "phone": "700-0002", "nationkey": 2},
    {"name": "cal", "address": "addr0", "phone": "701-0003", "nationkey": 1},
]


@pytest.fixture
def db():
    db = CleanDB(num_nodes=2)
    db.register_table("customer", CUSTOMERS)
    return db


def codes(diags):
    return [d.code for d in diags]


# --------------------------------------------------------------------- #
# Error classes: parse and name resolution
# --------------------------------------------------------------------- #
class TestNameResolution:
    def test_cm001_parse_error(self, db):
        diags = db.check("SELECT * FROM")
        assert codes(diags) == ["CM001"]
        assert diags[0].span is not None

    def test_cm101_unknown_table(self, db):
        diags = db.check("SELECT o.total FROM orders o")
        assert "CM101" in codes(diags)

    def test_cm102_unknown_column_with_suggestion(self, db):
        diags = db.check("SELECT c.nam FROM customer c")
        (diag,) = [d for d in diags if d.code == "CM102"]
        assert "name" in (diag.hint or "")
        assert diag.span is not None and diag.span.length >= len("c.nam")

    def test_cm103_unbound_alias(self, db):
        diags = db.check("SELECT d.name FROM customer c")
        assert "CM103" in codes(diags)

    def test_cm104_unknown_function(self, db):
        diags = db.check("SELECT frobnicate(c.name) FROM customer c")
        (diag,) = [d for d in diags if d.code == "CM104"]
        assert "frobnicate" in diag.message


# --------------------------------------------------------------------- #
# Error classes: types and cleaning-operator parameters
# --------------------------------------------------------------------- #
class TestTypeChecks:
    def test_cm201_ordered_comparison_over_incompatible_domains(self, db):
        diags = db.check("SELECT * FROM customer c WHERE c.name > 3")
        (diag,) = [d for d in diags if d.code == "CM201"]
        assert "str" in diag.message and "num" in diag.message

    def test_cm201_silent_on_dirty_mixed_columns(self):
        db = CleanDB(num_nodes=2)
        db.register_table(
            "t", [{"v": 1}, {"v": "two"}, {"v": None}]
        )  # mixed domain: analyzer must not guess
        assert db.check("SELECT * FROM t x WHERE x.v > 3") == []

    def test_cm202_theta_outside_unit_interval(self, db):
        diags = db.check(
            "SELECT * FROM customer c DEDUP(exact, LD, 1.5, c.name)"
        )
        assert "CM202" in codes(diags)

    def test_cm203_unknown_metric(self, db):
        diags = db.check(
            "SELECT * FROM customer c DEDUP(exact, XQ, 0.7, c.name)"
        )
        (diag,) = [d for d in diags if d.code == "CM203"]
        assert "XQ" in diag.message

    def test_cm204_unknown_blocking_operator(self, db):
        diags = db.check(
            "SELECT * FROM customer c DEDUP(wavelet, LD, 0.7, c.name)"
        )
        assert "CM204" in codes(diags)

    def test_cm205_dedup_without_attributes(self, db):
        diags = db.check("SELECT * FROM customer c DEDUP(exact, LD, 0.7)")
        assert "CM205" in codes(diags)


# --------------------------------------------------------------------- #
# Error classes: denial constraints
# --------------------------------------------------------------------- #
class TestDenialConstraints:
    def test_cm301_malformed_clause(self, db):
        diags = db.check(rule="t1.name ~ t2.name", on="customer")
        assert "CM301" in codes(diags)

    def test_cm302_unknown_attribute(self, db):
        diags = db.check(rule="t1.salary == t2.salary", on="customer")
        hits = [d for d in diags if d.code == "CM302"]
        assert hits and all("salary" in d.message for d in hits)

    def test_cm303_type_incompatible_comparison(self, db):
        diags = db.check(rule="t1.name < t2.nationkey", on="customer")
        assert "CM303" in codes(diags)

    def test_cm304_unsatisfiable_orderings(self, db):
        diags = db.check(
            rule="t1.address == t2.address and t1.address != t2.address",
            on="customer",
        )
        assert "CM304" in codes(diags)

    def test_satisfiable_rule_is_clean(self, db):
        assert (
            db.check(
                rule="t1.address == t2.address and t1.phone != t2.phone",
                on="customer",
            )
            == []
        )

    def test_analyze_dc_without_schema_skips_attribute_checks(self):
        diags = analyze_dc("t1.salary == t2.salary")
        assert diags == []  # no TableInfo: existence cannot be judged


# --------------------------------------------------------------------- #
# Error classes: monoid legality and shippability
# --------------------------------------------------------------------- #
class TestDistributionChecks:
    def test_cm401_non_commutative_monoid(self):
        comp = Comprehension(
            monoid=ListMonoid(),
            head=Var("x"),
            qualifiers=(Generator("x", Var("rows")),),
        )
        diags = check_monoid_legality(comp, branch="fd1")
        (diag,) = diags
        assert diag.code == "CM401"
        assert "fd1" in diag.message and "list" in diag.message

    def test_cm501_unshippable_user_function_under_parallel(self, db):
        register_function("locally", lambda v: v)
        try:
            db.config = replace(db.config, execution="parallel")
            diags = db.check("SELECT locally(c.name) FROM customer c")
            (diag,) = [d for d in diags if d.code == "CM501"]
            assert "locally" in diag.message
        finally:
            del DEFAULT_FUNCTIONS["locally"]

    def test_cm501_silent_in_row_mode(self, db):
        register_function("locally", lambda v: v)
        try:
            assert db.check("SELECT locally(c.name) FROM customer c") == []
        finally:
            del DEFAULT_FUNCTIONS["locally"]

    def test_builtins_exempt_from_cm501(self, db):
        db.config = replace(db.config, execution="parallel")
        assert db.check("SELECT prefix(c.phone) FROM customer c") == []


# --------------------------------------------------------------------- #
# Compile-time enforcement (the facade raises on errors)
# --------------------------------------------------------------------- #
class TestFacadeEnforcement:
    def test_compile_raises_diagnostics_error(self, db):
        with pytest.raises(DiagnosticsError) as exc:
            db.compile("SELECT c.nam FROM customer c")
        assert codes(exc.value.diagnostics) == ["CM102"]
        assert exc.value.source == "SELECT c.nam FROM customer c"

    def test_execute_rejects_before_running(self, db):
        with pytest.raises(DiagnosticsError):
            db.execute("SELECT * FROM customer c WHERE c.name > 3")

    def test_check_dc_rejects_bad_rule(self, db):
        with pytest.raises(DiagnosticsError) as exc:
            db.check_dc("customer", "t1.salary == t2.salary")
        assert "CM302" in codes(exc.value.diagnostics)

    def test_warnings_do_not_block_compile(self, db):
        # A satisfiable plan with no errors must still compile.
        plan = db.compile("SELECT * FROM customer c FD(c.address, c.phone)")
        assert plan is not None


# --------------------------------------------------------------------- #
# Infrastructure: schema inference, spans, rendering, code registry
# --------------------------------------------------------------------- #
class TestInference:
    def test_infer_table_kinds(self):
        info = infer_table(CUSTOMERS)
        assert info.kind_of("name") == "str"
        assert info.kind_of("nationkey") == "num"
        assert info.kind_of("missing") is None

    def test_none_values_do_not_poison_kinds(self):
        info = infer_table([{"a": None}, {"a": 3}, {"a": None}])
        assert info.kind_of("a") == "num"

    def test_bools_count_as_numbers(self):
        info = infer_table([{"flag": True}, {"flag": 0}])
        assert info.kind_of("flag") == "num"

    def test_scalar_tables_are_not_records(self):
        info = infer_table(["ann", "bob"])
        assert not info.is_record


class TestSpansAndRendering:
    def test_attr_span_points_at_the_reference(self):
        sql = "SELECT c.nam FROM customer c"
        span = SpanFinder(sql).attr("c", "nam")
        assert span is not None
        assert sql[span.position : span.position + span.length] == "c.nam"

    def test_render_includes_caret_line(self, db):
        sql = "SELECT c.nam FROM customer c"
        diags = db.check(sql)
        text = render_diagnostics(diags, {"query": sql})
        assert "error[CM102]" in text
        assert "^" in text and "c.nam" in text

    def test_render_without_source_still_prints_code(self):
        diag = Diagnostic(code="CM601", severity="error", message="boom")
        text = render_diagnostics([diag], {})
        assert "error[CM601]: boom" in text

    def test_errors_in_filters_severity(self):
        warn = Diagnostic(code="CM304", severity="warning", message="w")
        err = Diagnostic(code="CM102", severity="error", message="e")
        assert errors_in([warn, err]) == [err]


class TestCodeRegistry:
    def test_codes_are_unique_and_well_formed(self):
        assert len(CODES) == len(set(CODES))
        for code in CODES:
            assert code.startswith("CM") and code[2:].isdigit()

    def test_analyzer_only_emits_registered_codes(self, db):
        probes = [
            "SELECT * FROM",
            "SELECT o.total FROM orders o",
            "SELECT c.nam FROM customer c",
            "SELECT frobnicate(c.name) FROM customer c",
            "SELECT * FROM customer c WHERE c.name > 3",
            "SELECT * FROM customer c DEDUP(exact, XQ, 1.5, c.name)",
        ]
        for sql in probes:
            for diag in db.check(sql):
                assert diag.code in CODES

    def test_analyze_query_accepts_raw_text(self, db):
        diags = analyze_query(
            "SELECT c.nam FROM customer c", {"customer": CUSTOMERS}
        )
        assert "CM102" in codes(diags)
