"""Integration tests for the CleanDB facade (parse → ... → execute)."""

import pytest

from repro import CleanDB, PhysicalConfig
from repro.errors import SchemaError


def customers():
    rows = []
    for i in range(40):
        addr = f"addr{i % 6}"
        rows.append(
            {
                "name": f"customer number {i}",
                "address": addr,
                # phone prefix is determined by address except for addr0:
                "phone": f"{900 + (i % 6) + (1 if i == 0 else 0)}-555-{i:04d}",
                "nationkey": (i % 6) % 3 if i != 6 else 99,  # addr0 violates FD2
            }
        )
    return rows


@pytest.fixture
def db():
    instance = CleanDB(num_nodes=4)
    instance.register_table("customer", customers())
    instance.register_table(
        "dictionary", ["customer number 1", "customer number 2"]
    )
    return instance


class TestRegistration:
    def test_unknown_table_in_query(self, db):
        with pytest.raises(SchemaError):
            db.execute("SELECT * FROM nope n")

    def test_rids_assigned(self, db):
        assert all("_rid" in r for r in db.table("customer"))


class TestPlainQueries:
    def test_select_star(self, db):
        result = db.execute("SELECT * FROM customer c")
        assert len(result.branch("query")) == 40

    def test_where_filter(self, db):
        result = db.execute("SELECT * FROM customer c WHERE c.nationkey = 99")
        assert len(result.branch("query")) == 1

    def test_projection_with_alias(self, db):
        result = db.execute("SELECT c.address AS a FROM customer c")
        assert all(set(r) == {"a"} for r in result.branch("query"))

    def test_distinct(self, db):
        result = db.execute("SELECT DISTINCT c.address FROM customer c")
        assert len(result.branch("query")) == 6

    def test_group_by_count(self, db):
        result = db.execute(
            "SELECT c.address, count(c.name) AS cnt FROM customer c GROUP BY c.address"
        )
        rows = result.branch("query")
        assert len(rows) == 6
        assert sum(r["cnt"] for r in rows) == 40

    def test_group_by_having(self, db):
        result = db.execute(
            "SELECT c.address, count(c.name) AS cnt FROM customer c "
            "GROUP BY c.address HAVING count(c.name) > 6"
        )
        assert all(r["cnt"] > 6 for r in result.branch("query"))

    def test_group_by_avg(self, db):
        result = db.execute(
            "SELECT c.address, avg(c.nationkey) AS m FROM customer c GROUP BY c.address"
        )
        assert len(result.branch("query")) == 6


class TestCleaningOperators:
    def test_fd_detects_violation(self, db):
        result = db.execute("SELECT * FROM customer c FD(c.address, c.nationkey)")
        keys = {v["key"] for v in result.branch("fd1")}
        assert "addr0" in keys

    def test_fd_with_computed_rhs(self, db):
        result = db.execute(
            "SELECT * FROM customer c FD(c.address, prefix(c.phone))"
        )
        keys = {v["key"] for v in result.branch("fd1")}
        assert "addr0" in keys  # customer 0 has the shifted prefix

    def test_dedup_exact_blocking(self, db):
        result = db.execute("SELECT * FROM customer c DEDUP(exact, LD, 0.2, c.address)")
        pairs = result.branch("dedup")
        assert pairs  # same-address customers with similar names
        sample = pairs[0]
        assert "p1" in sample and "p2" in sample

    def test_cluster_by_token_filtering(self, db):
        result = db.execute(
            "SELECT * FROM customer c, dictionary d "
            "CLUSTER BY(token_filtering, LD, 0.8, c.name)"
        )
        suggestions = dict(result.branch("cluster_by"))
        # every dirty name is close to a dictionary name here
        assert all(s.startswith("customer number") for s in suggestions.values())

    def test_unified_query_coalesces(self, db):
        result = db.execute(
            "SELECT * FROM customer c "
            "FD(c.address, prefix(c.phone)) FD(c.address, c.nationkey) "
            "DEDUP(exact, LD, 0.2, c.address)"
        )
        assert ("fd1", "fd2", "dedup") in result.report.coalesced_groups
        assert result.report.shared_scan == "customer"
        assert set(result.branches) == {"fd1", "fd2", "dedup"}

    def test_unified_cheaper_than_separate(self):
        query = (
            "SELECT * FROM customer c "
            "FD(c.address, prefix(c.phone)) FD(c.address, c.nationkey) "
            "DEDUP(exact, LD, 0.2, c.address)"
        )
        unified = CleanDB(num_nodes=4)
        unified.register_table("customer", customers())
        r1 = unified.execute(query)

        separate = CleanDB(num_nodes=4, coalesce=False)
        separate.register_table("customer", customers())
        r2 = separate.execute(query)

        assert r1.metrics["simulated_time"] < r2.metrics["simulated_time"]
        # identical answers regardless of plan
        for name in r1.branches:
            assert len(r1.branch(name)) == len(r2.branch(name))

    def test_violations_property_tags_branches(self, db):
        result = db.execute(
            "SELECT * FROM customer c FD(c.address, c.nationkey)"
        )
        assert all(tag == "fd1" for tag, _ in result.violations)


class TestExplain:
    def test_explain_mentions_levels(self, db):
        text = db.explain(
            "SELECT * FROM customer c "
            "FD(c.address, prefix(c.phone)) FD(c.address, c.nationkey)"
        )
        assert "Monoid level" in text
        assert "coalesced groupings: fd1 + fd2" in text
        assert "shared scan: customer" in text
        assert "Physical plan" in text

    def test_explain_does_not_execute(self, db):
        before = db.cluster.metrics.simulated_time
        db.explain("SELECT * FROM customer c")
        assert db.cluster.metrics.simulated_time == before


class TestPhysicalConfigs:
    @pytest.mark.parametrize("grouping", ["aggregate", "sort", "hash"])
    def test_same_results_across_groupings(self, grouping):
        db = CleanDB(num_nodes=4, config=PhysicalConfig(grouping=grouping))
        db.register_table("customer", customers())
        result = db.execute("SELECT * FROM customer c FD(c.address, c.nationkey)")
        assert {v["key"] for v in result.branch("fd1")} == {"addr0"}


class TestProfile:
    def test_profile_reports_skew(self):
        db = CleanDB(num_nodes=2)
        rows = [{"k": 0}] * 90 + [{"k": i} for i in range(1, 11)]
        db.register_table("t", rows)
        stats = db.profile("t", "k")
        assert stats.is_skewed
        assert stats.top_keys[0][0] == 0

    def test_profile_uniform(self):
        db = CleanDB(num_nodes=2)
        db.register_table("t", [{"k": i} for i in range(50)])
        stats = db.profile("t", "k")
        assert not stats.is_skewed

    def test_profile_unknown_table(self):
        import pytest as _pytest

        from repro.errors import SchemaError

        db = CleanDB(num_nodes=2)
        with _pytest.raises(SchemaError):
            db.profile("missing", "k")


class TestCodegen:
    """Fig. 2's Code Generator: same answers, generated script execution."""

    QUERY = (
        "SELECT * FROM customer c "
        "FD(c.address, prefix(c.phone)) FD(c.address, c.nationkey) "
        "DEDUP(exact, LD, 0.2, c.address)"
    )

    def test_generated_matches_interpreted(self):
        results = {}
        for use_codegen in (False, True):
            db = CleanDB(num_nodes=4, use_codegen=use_codegen)
            db.register_table("customer", customers())
            result = db.execute(self.QUERY)
            results[use_codegen] = {
                name: len(rows) for name, rows in result.branches.items()
            }
        assert results[False] == results[True]

    def test_cluster_by_through_codegen(self):
        db = CleanDB(num_nodes=4, use_codegen=True, q=2)
        db.register_table("customer", customers())
        db.register_table("dictionary", ["customer number 1"])
        result = db.execute(
            "SELECT * FROM customer c, dictionary d "
            "CLUSTER BY(token_filtering, LD, 0.8, c.name)"
        )
        assert "cluster_by" in result.branches
