"""Plan-invariant verification (CM6xx) and handle verification (CM502).

These operate on hand-built plans and a stub pool so each invariant can be
violated in isolation — real lowered plans never violate them, which is
exactly why the verifier exists: it guards against *future* rewriter bugs.
"""

import pytest

from repro import CleanDB
from repro.algebra.operators import (
    Join,
    Nest,
    Reduce,
    Scan,
    Select,
    SharedScanDAG,
    Unnest,
)
from repro.core.semantics import DiagnosticsError
from repro.core.verify import verify_handles, verify_plan
from repro.monoid.expressions import Proj, Var
from repro.monoid.monoids import BagMonoid


def codes(diags):
    return [d.code for d in diags]


class TestVerifyPlan:
    def test_clean_plan_has_no_diagnostics(self):
        plan = Select(Scan("customer", "c"), Proj(Var("c"), "name"))
        assert verify_plan(plan, ["customer"], ["query"]) == []

    def test_cm601_branch_set_changed(self):
        dag = SharedScanDAG(
            scan=Scan("customer", "c"),
            branches=(Select(Scan("customer", "c"), Var("c")),),
            branch_names=("fd1",),
        )
        diags = verify_plan(dag, ["customer"], ["fd1", "dedup1"])
        assert codes(diags) == ["CM601"]
        assert "dedup1" in diags[0].message

    def test_cm602_select_predicate_unbound(self):
        plan = Select(Scan("customer", "c"), Proj(Var("d"), "name"))
        diags = verify_plan(plan, ["customer"])
        assert codes(diags) == ["CM602"]
        assert "'d'" in diags[0].message and "'c'" in diags[0].message

    def test_cm602_nest_group_predicate_sees_only_group_var(self):
        # Downstream of a Nest the record env is rebound to {var}; a
        # group predicate peeking at the scan variable is a rewriter bug.
        plan = Nest(
            child=Scan("customer", "c"),
            key=Proj(Var("c"), "address"),
            aggregates=(("cnt", BagMonoid(), Var("c")),),
            group_predicate=Proj(Var("c"), "name"),
            var="g",
        )
        diags = verify_plan(plan, ["customer"])
        assert codes(diags) == ["CM602"]
        assert "Nest group predicate" in diags[0].message

    def test_cm602_join_keys_check_their_own_side(self):
        left = Scan("customer", "c")
        right = Scan("dictionary", "d")
        plan = Join(
            left,
            right,
            left_keys=(Proj(Var("d"), "name"),),  # right-side var on the left
            right_keys=(Proj(Var("d"), "name"),),
        )
        diags = verify_plan(plan, ["customer", "dictionary"])
        assert codes(diags) == ["CM602"]
        assert "Join left key" in diags[0].message

    def test_unnest_binds_its_variable_for_the_predicate(self):
        plan = Unnest(
            child=Scan("customer", "c"),
            path=Proj(Var("c"), "phones"),
            var="p",
            predicate=Var("p"),
        )
        assert verify_plan(plan, ["customer"]) == []

    def test_cm603_unknown_scan_table(self):
        plan = Reduce(Scan("ghost", "g"), BagMonoid(), Var("g"))
        diags = verify_plan(plan, ["customer"])
        assert codes(diags) == ["CM603"]
        assert "ghost" in diags[0].message

    def test_shared_scan_root_checked_once(self):
        scan = Scan("ghost", "c")
        dag = SharedScanDAG(
            scan=scan,
            branches=(Select(scan, Var("c")),),
            branch_names=("q",),
        )
        diags = verify_plan(dag, ["customer"], ["q"])
        # The bad table is reported exactly once even though the scan
        # appears both as the DAG root and inside the branch.
        assert codes(diags) == ["CM603"]


class _StubPool:
    """Only what verify_handles touches: pinned_versions()."""

    def __init__(self, versions):
        self._versions = versions
        self.raises = False

    def pinned_versions(self, name):
        if self.raises:
            raise RuntimeError("pool mid-restart")
        return self._versions.get(name, [])


class TestVerifyHandles:
    def test_matching_version_is_clean(self):
        pool = _StubPool({"tbl:customer": [2]})
        assert verify_handles(pool, {"customer": ("tbl:customer", 2)}) == []

    def test_cold_store_is_clean(self):
        pool = _StubPool({})
        assert verify_handles(pool, {"customer": ("tbl:customer", 2)}) == []

    def test_cm502_version_skew(self):
        pool = _StubPool({"tbl:customer": [1]})
        diags = verify_handles(pool, {"customer": ("tbl:customer", 2)})
        assert codes(diags) == ["CM502"]
        assert "v2" in diags[0].message and "v1" in diags[0].message

    def test_pool_error_defers_to_dispatch_recovery(self):
        pool = _StubPool({"tbl:customer": [1]})
        pool.raises = True
        assert verify_handles(pool, {"customer": ("tbl:customer", 2)}) == []


class TestEndToEndInvariants:
    def test_every_compiled_plan_passes_verification(self):
        db = CleanDB(num_nodes=2)
        db.register_table(
            "customer",
            [{"name": "ann", "address": "x", "phone": "700", "nationkey": 1}],
        )
        for sql in [
            "SELECT * FROM customer c",
            "SELECT * FROM customer c FD(c.address, c.nationkey)",
            "SELECT * FROM customer c FD(c.address, c.phone) "
            "DEDUP(exact, LD, 0.5, c.address)",
        ]:
            db.compile(sql)  # raises DiagnosticsError on any CM6xx

    def test_diagnostics_error_is_schema_error(self):
        from repro.errors import SchemaError

        assert issubclass(DiagnosticsError, SchemaError)
