"""The ``repro check`` command and the CLI's diagnostic rendering.

Contract under test: malformed queries and rules exit 1 with an
``error:`` summary on stderr plus a caret-annotated span block — never a
traceback — and a clean program prints ``ok`` and exits 0.  ``query``
and ``dc`` share the same rendering on their error paths.
"""

import pytest

from repro.cli import main
from repro.sources import Schema, write_records


@pytest.fixture
def customer_csv(tmp_path):
    schema = Schema.of(name="str", address="str", nationkey="int")
    rows = [
        {"name": "ann", "address": "x", "nationkey": 1},
        {"name": "bob", "address": "x", "nationkey": 2},
    ]
    path = tmp_path / "customer.csv"
    write_records(path, rows, "csv", schema)
    return path


def spec(path):
    return f"customer={path}:csv:name:str,address:str,nationkey:int"


class TestCheckCommand:
    def test_clean_query_exits_zero(self, customer_csv, capsys):
        code = main(
            ["check", "--table", spec(customer_csv), "SELECT * FROM customer c"]
        )
        assert code == 0
        assert "ok: no diagnostics" in capsys.readouterr().out

    def test_unknown_column_exits_one_with_caret(self, customer_csv, capsys):
        code = main(
            ["check", "--table", spec(customer_csv), "SELECT c.nam FROM customer c"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error[CM102]" in captured.out
        assert "^" in captured.out
        assert "did you mean" in captured.out
        assert "1 error(s)" in captured.out

    def test_parse_error_is_cm001_not_a_traceback(self, customer_csv, capsys):
        code = main(["check", "--table", spec(customer_csv), "SELECT * FROM"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error[CM001]" in captured.out
        assert "Traceback" not in captured.out + captured.err

    def test_rule_only_invocation(self, customer_csv, capsys):
        code = main(
            [
                "check",
                "--table",
                spec(customer_csv),
                "--rule",
                "t1.salary == t2.salary",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "error[CM302]" in captured.out

    def test_clean_rule_exits_zero(self, customer_csv, capsys):
        code = main(
            [
                "check",
                "--table",
                spec(customer_csv),
                "--rule",
                "t1.address == t2.address and t1.name != t2.name",
            ]
        )
        assert code == 0
        assert "ok: no diagnostics" in capsys.readouterr().out

    def test_no_query_and_no_rule_is_an_error(self, capsys):
        code = main(["check"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_on_unknown_table_is_an_error(self, customer_csv, capsys):
        code = main(
            [
                "check",
                "--table",
                spec(customer_csv),
                "--rule",
                "t1.name == t2.name",
                "--on",
                "ghost",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "ghost" in captured.err

    def test_query_from_file(self, customer_csv, tmp_path, capsys):
        qfile = tmp_path / "q.sql"
        qfile.write_text("SELECT * FROM customer c FD(c.address, c.nationkey)")
        code = main(["check", "--table", spec(customer_csv), f"@{qfile}"])
        assert code == 0
        assert "ok" in capsys.readouterr().out


class TestQueryErrorRendering:
    def test_query_semantic_error_renders_carets(self, customer_csv, capsys):
        code = main(
            ["query", "--table", spec(customer_csv), "SELECT c.nam FROM customer c"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "error[CM102]" in captured.err
        assert "Traceback" not in captured.err

    def test_query_parse_error_renders_carets(self, customer_csv, capsys):
        code = main(
            ["query", "--table", spec(customer_csv), "SELECT * FROM customer c WHERE"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "^" in captured.err

    def test_dc_malformed_rule_renders_carets(self, customer_csv, capsys):
        code = main(
            [
                "dc",
                "--table",
                spec(customer_csv),
                "--rule",
                "t1.name ~ t2.name",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "error[CM301]" in captured.err
