"""Unit tests for the CleanM tokenizer."""

import pytest

from repro.core import tokenize
from repro.errors import ParseError


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop EOF


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where")[0] == ("KEYWORD", "SELECT")
        assert kinds("select FROM Where")[1] == ("KEYWORD", "FROM")
        assert kinds("select FROM Where")[2] == ("KEYWORD", "WHERE")

    def test_identifiers_keep_case(self):
        assert ("IDENT", "MyTable") in kinds("MyTable")

    def test_numbers(self):
        assert kinds("42 0.8") == [("NUMBER", "42"), ("NUMBER", "0.8")]

    def test_number_then_projection_dot(self):
        # "c.name" after a number must not absorb the dot.
        tokens = kinds("1.name")
        assert tokens[0] == ("NUMBER", "1")
        assert tokens[1] == ("SYMBOL", ".")

    def test_string_literal(self):
        assert kinds("'hello world'") == [("STRING", "hello world")]

    def test_string_escape(self):
        assert kinds("'it''s'") == [("STRING", "it's")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_two_char_symbols(self):
        assert kinds("<= >= != <>") == [
            ("SYMBOL", "<="), ("SYMBOL", ">="), ("SYMBOL", "!="), ("SYMBOL", "<>"),
        ]

    def test_comment_skipped(self):
        assert kinds("SELECT -- a comment\n1") == [
            ("KEYWORD", "SELECT"), ("NUMBER", "1"),
        ]

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as info:
            tokenize("SELECT ~")
        assert info.value.position > 0

    def test_line_tracking(self):
        tokens = tokenize("SELECT\nFROM")
        assert tokens[1].line == 2

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_fd_dedup_cluster_keywords(self):
        values = [v for _, v in kinds("FD DEDUP CLUSTER BY")]
        assert values == ["FD", "DEDUP", "CLUSTER", "BY"]
