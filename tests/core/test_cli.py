"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main, parse_table_spec
from repro.sources import Schema, write_records


@pytest.fixture
def customer_csv(tmp_path):
    schema = Schema.of(name="str", address="str", nationkey="int")
    rows = [
        {"name": "ann", "address": "x", "nationkey": 1},
        {"name": "bob", "address": "x", "nationkey": 2},
    ]
    path = tmp_path / "customer.csv"
    write_records(path, rows, "csv", schema)
    return path


class TestParseTableSpec:
    def test_full_spec(self):
        name, path, fmt, schema = parse_table_spec(
            "t=/data/f.csv:csv:a:int,b:str"
        )
        assert name == "t" and fmt == "csv"
        assert schema.names == ["a", "b"]
        assert schema.field("a").type == "int"

    def test_no_schema(self):
        name, path, fmt, schema = parse_table_spec("t=/data/f.json:json")
        assert fmt == "json" and schema is None

    def test_missing_equals(self):
        with pytest.raises(ValueError):
            parse_table_spec("nonsense")

    def test_missing_format(self):
        with pytest.raises(ValueError):
            parse_table_spec("t=/data/file")

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            parse_table_spec("t=/data/f.avro:avro")

    def test_bad_schema_entry(self):
        with pytest.raises(ValueError):
            parse_table_spec("t=f.csv:csv:notypehere")


class TestCommands:
    def test_formats(self, capsys):
        assert main(["formats"]) == 0
        out = capsys.readouterr().out
        assert "csv" in out and "columnar" in out

    def test_query(self, customer_csv, capsys):
        code = main(
            [
                "query",
                "--table",
                f"customer={customer_csv}:csv:name:str,address:str,nationkey:int",
                "--nodes", "2",
                "SELECT * FROM customer c FD(c.address, c.nationkey)",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "branch 'fd1'" in out
        assert "1 rows" in out

    def test_query_parallel_backend_matches_row(self, customer_csv, capsys):
        args_tail = [
            "--table",
            f"customer={customer_csv}:csv:name:str,address:str,nationkey:int",
            "--nodes", "2",
            "SELECT * FROM customer c FD(c.address, c.nationkey)",
        ]
        assert main(["query"] + args_tail) == 0
        row_out = capsys.readouterr().out
        assert (
            main(["query", "--execution", "parallel", "--workers", "2"] + args_tail)
            == 0
        )
        parallel_out = capsys.readouterr().out
        assert parallel_out == row_out

    def test_parallel_reports_measured_time(self, customer_csv, capsys):
        code = main(
            [
                "query", "--metrics", "--execution", "parallel", "--workers", "2",
                "--table",
                f"customer={customer_csv}:csv:name:str,address:str,nationkey:int",
                "SELECT * FROM customer c FD(c.address, c.nationkey)",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert '"measured_time"' in out

    def test_explain(self, customer_csv, capsys):
        code = main(
            [
                "explain",
                "--table",
                f"customer={customer_csv}:csv:name:str,address:str,nationkey:int",
                "SELECT * FROM customer c",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Physical plan" in out

    def test_metrics_flag(self, customer_csv, capsys):
        main(
            [
                "query", "--metrics",
                "--table",
                f"customer={customer_csv}:csv:name:str,address:str,nationkey:int",
                "SELECT * FROM customer c",
            ]
        )
        out = capsys.readouterr().out
        assert "simulated_time" in out

    def test_sql_from_file(self, customer_csv, tmp_path, capsys):
        sql_file = tmp_path / "q.sql"
        sql_file.write_text("SELECT * FROM customer c")
        code = main(
            [
                "query",
                "--table",
                f"customer={customer_csv}:csv:name:str,address:str,nationkey:int",
                f"@{sql_file}",
            ]
        )
        assert code == 0

    def test_error_reported_not_raised(self, capsys):
        code = main(["query", "SELECT * FROM missing m"])
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err

    def test_parse_error_reported(self, customer_csv, capsys):
        code = main(
            [
                "query",
                "--table",
                f"customer={customer_csv}:csv:name:str,address:str,nationkey:int",
                "SELEKT oops",
            ]
        )
        assert code == 1

    def test_budget_flag_triggers_failure(self, customer_csv, capsys):
        code = main(
            [
                "query", "--budget", "0.5",
                "--table",
                f"customer={customer_csv}:csv:name:str,address:str,nationkey:int",
                "SELECT * FROM customer c",
            ]
        )
        assert code == 1
        assert "budget" in capsys.readouterr().err


class TestDCCommand:
    @pytest.fixture
    def lineitem_csv(self, tmp_path):
        schema = Schema.of(price="float", discount="float")
        rows = [
            {"price": 10.0, "discount": 0.05},
            {"price": 20.0, "discount": 0.01},
            {"price": 30.0, "discount": 0.10},
        ]
        path = tmp_path / "lineitem.csv"
        write_records(path, rows, "csv", schema)
        return path

    def test_dc_check(self, lineitem_csv, capsys):
        code = main(
            [
                "dc",
                "--table", f"lineitem={lineitem_csv}:csv:price:float,discount:float",
                "--rule", "t1.price < t2.price and t1.discount > t2.discount",
                "--metrics",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 violating pairs (banded)" in out
        assert "pruning_ratio" in out

    def test_dc_repair(self, lineitem_csv, capsys):
        code = main(
            [
                "dc",
                "--table", f"lineitem={lineitem_csv}:csv:price:float,discount:float",
                "--rule", "t1.price < t2.price and t1.discount > t2.discount",
                "--where", "t1.price < 15",
                "--dc-strategy", "banded",
                "--repair",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "repair by relaxation" in out
        assert "residual violations: 0" in out

    def test_dc_bad_rule_errors(self, lineitem_csv, capsys):
        code = main(
            [
                "dc",
                "--table", f"lineitem={lineitem_csv}:csv:price:float,discount:float",
                "--rule", "price ~ discount",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_dc_requires_on_with_multiple_tables(self, lineitem_csv, capsys):
        code = main(
            [
                "dc",
                "--table", f"a={lineitem_csv}:csv:price:float,discount:float",
                "--table", f"b={lineitem_csv}:csv:price:float,discount:float",
                "--rule", "t1.price < t2.price",
            ]
        )
        assert code == 1
        assert "--on" in capsys.readouterr().err

    def test_dc_on_unknown_table_errors(self, lineitem_csv, capsys):
        """--on naming an unregistered table must exit 1 with the CLI's
        clean error contract, never a raw traceback."""
        code = main(
            [
                "dc",
                "--table", f"a={lineitem_csv}:csv:price:float,discount:float",
                "--table", f"b={lineitem_csv}:csv:price:float,discount:float",
                "--rule", "t1.price < t2.price and t1.discount > t2.discount",
                "--on", "nope",
            ]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "error:" in err
        assert "unknown table 'nope'" in err
        assert "registered: a, b" in err
        assert "Traceback" not in err

    def test_dc_on_selects_among_multiple_tables(self, lineitem_csv, capsys):
        code = main(
            [
                "dc",
                "--table", f"a={lineitem_csv}:csv:price:float,discount:float",
                "--table", f"b={lineitem_csv}:csv:price:float,discount:float",
                "--rule", "t1.price < t2.price and t1.discount > t2.discount",
                "--on", "b",
            ]
        )
        assert code == 0
        assert "violating pairs" in capsys.readouterr().out


class TestServeCommand:
    @pytest.fixture
    def customer_csv(self, tmp_path):
        schema = Schema.of(name="str", address="str", nationkey="int")
        rows = [
            {"name": f"n{i % 3}", "address": f"a{i % 2}", "nationkey": i % 4}
            for i in range(12)
        ]
        path = tmp_path / "customer.csv"
        write_records(path, rows, "csv", schema)
        return path

    def _workload(self, tmp_path, payload):
        import json

        path = tmp_path / "workload.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_serve_runs_multi_tenant_workload(self, tmp_path, customer_csv, capsys):
        workload = self._workload(
            tmp_path,
            [
                {"tenant": "acme", "op": "fd", "table": "c",
                 "lhs": ["address"], "rhs": ["nationkey"]},
                {"tenant": "zen", "op": "dedup", "table": "c",
                 "attributes": ["name"], "theta": 0.5},
            ],
        )
        code = main(
            [
                "serve",
                "--table", f"acme/c={customer_csv}:csv:name:str,address:str,nationkey:int",
                "--table", f"zen/c={customer_csv}:csv:name:str,address:str,nationkey:int",
                "--workload", str(workload),
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "acme/fd: ok" in out
        assert "zen/dedup: ok" in out
        assert "p99" in out and "q/s" in out

    def test_serve_budget_exceeded_exits_nonzero(self, tmp_path, customer_csv, capsys):
        workload = self._workload(
            tmp_path,
            {
                "queries": [
                    {"tenant": "poor", "op": "fd", "table": "c",
                     "lhs": ["address"], "rhs": ["nationkey"]},
                ],
                "budgets": {"poor": 1e-9},
            },
        )
        code = main(
            [
                "serve",
                "--table", f"poor/c={customer_csv}:csv:name:str,address:str,nationkey:int",
                "--workload", str(workload),
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "poor/fd: budget_exceeded" in out

    def test_serve_bad_workload_errors(self, tmp_path, customer_csv, capsys):
        workload = self._workload(tmp_path, {"queries": "not-a-list"})
        code = main(
            [
                "serve",
                "--table", f"c={customer_csv}:csv:name:str,address:str,nationkey:int",
                "--workload", str(workload),
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_missing_workload_file_errors(self, tmp_path, capsys):
        code = main(["serve", "--workload", str(tmp_path / "missing.json")])
        assert code == 1
        err = capsys.readouterr().err
        assert "error: cannot read workload" in err
