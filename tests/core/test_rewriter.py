"""Unit tests for the de-sugarizer (AST → comprehension templates, §4.4)."""

import pytest

from repro.core.parser import parse
from repro.core.rewriter import rewrite_query
from repro.errors import PlanningError
from repro.monoid import (
    BagMonoid,
    Comprehension,
    Filter,
    Generator,
    SetMonoid,
    evaluate_comprehension,
)
from repro.physical.functions import DEFAULT_FUNCTIONS

FUNCS = dict(DEFAULT_FUNCTIONS)
FUNCS.update(
    {
        "block_keys": lambda kind, term: [str(term)[:2]],
        "rid_less": lambda a, b: a["_rid"] < b["_rid"],
        "similar_records": lambda metric, a, b, theta, attrs: True,
        "pair": lambda a, b: (a, b),
        "in_dictionary": lambda t: False,
        "freeze": lambda v: str(v),
        "nth": lambda key, i: key[i],
        "agg": lambda kind, partition, attr: len(partition),
        "concat_terms": lambda *parts: " ".join(map(str, parts)),
    }
)


class TestFDTemplate:
    def test_structure(self):
        [branch] = rewrite_query(parse("SELECT * FROM t c FD(c.a, c.b)"))
        assert branch.kind == "fd"
        comp = branch.comprehension
        assert isinstance(comp.monoid, BagMonoid)
        # One generator over the grouping comprehension + the count filter.
        assert isinstance(comp.qualifiers[0], Generator)
        assert isinstance(comp.qualifiers[0].source, Comprehension)
        assert isinstance(comp.qualifiers[1], Filter)

    def test_reference_evaluation_detects_violation(self):
        [branch] = rewrite_query(parse("SELECT * FROM t c FD(c.a, c.b)"))
        data = [
            {"a": 1, "b": 10, "_rid": 0},
            {"a": 1, "b": 20, "_rid": 1},
            {"a": 2, "b": 30, "_rid": 2},
        ]
        groups = evaluate_comprehension(branch.comprehension, {"t": data}, FUNCS)
        assert len(groups) == 1
        assert groups[0]["key"] == 1

    def test_fd_names_numbered(self):
        branches = rewrite_query(
            parse("SELECT * FROM t c FD(c.a, c.b) FD(c.a, c.d)")
        )
        assert [b.name for b in branches] == ["fd1", "fd2"]


class TestDedupTemplate:
    def test_exact_blocking_groups_on_term(self):
        [branch] = rewrite_query(
            parse("SELECT * FROM t c DEDUP(exact, LD, 0.9, c.name)")
        )
        groups_comp = branch.comprehension.qualifiers[0].source
        # Exact blocking keys on the attribute expression itself (enabling
        # coalescing with FDs on the same attribute).
        assert "block_keys" not in repr(groups_comp.head)

    def test_token_filtering_uses_block_keys(self):
        [branch] = rewrite_query(
            parse("SELECT * FROM t c DEDUP(token_filtering, LD, 0.9, c.name)")
        )
        groups_comp = branch.comprehension.qualifiers[0].source
        assert "block_keys" in repr(groups_comp.head)

    def test_reference_evaluation_emits_ordered_pairs(self):
        [branch] = rewrite_query(
            parse("SELECT * FROM t c DEDUP(exact, LD, 0.9, c.name)")
        )
        data = [
            {"name": "xx", "_rid": 0},
            {"name": "xx", "_rid": 1},
        ]
        pairs = evaluate_comprehension(branch.comprehension, {"t": data}, FUNCS)
        assert len(pairs) == 1
        assert pairs[0]["p1"]["_rid"] == 0 and pairs[0]["p2"]["_rid"] == 1

    def test_params_recorded(self):
        [branch] = rewrite_query(
            parse("SELECT * FROM t c DEDUP(kmeans, jaccard, 0.6, c.name)")
        )
        assert branch.params["op"] == "kmeans"
        assert branch.params["metric"] == "jaccard"
        assert branch.params["theta"] == 0.6


class TestClusterByTemplate:
    def test_requires_dictionary_table(self):
        query = parse("SELECT * FROM t c CLUSTER BY(token_filtering, LD, 0.8, c.name)")
        with pytest.raises(PlanningError):
            rewrite_query(query)

    def test_set_monoid_output(self):
        [branch] = rewrite_query(
            parse(
                "SELECT * FROM t c, dict d "
                "CLUSTER BY(token_filtering, LD, 0.8, c.name)"
            )
        )
        assert isinstance(branch.comprehension.monoid, SetMonoid)
        assert branch.params["dictionary"] == "dict"


class TestSelectTemplate:
    def test_plain_query_branch(self):
        [branch] = rewrite_query(parse("SELECT c.a FROM t c WHERE c.a > 1"))
        assert branch.kind == "query"
        result = evaluate_comprehension(
            branch.comprehension, {"t": [{"a": 1}, {"a": 5}]}, FUNCS
        )
        assert result == [{"a": 5}]

    def test_group_by_requires_aggregate_or_key(self):
        query = parse("SELECT c.a, c.b FROM t c GROUP BY c.a")
        with pytest.raises(PlanningError):
            rewrite_query(query)

    def test_star_with_group_by_rejected(self):
        query = parse("SELECT * FROM t c GROUP BY c.a")
        with pytest.raises(PlanningError):
            rewrite_query(query)
