"""Unit tests for the CleanM parser (Listing 1 grammar)."""

import pytest

from repro.core import parse
from repro.core.ast_nodes import ClusterByOp, DedupOp, FDOp, Star
from repro.errors import ParseError
from repro.monoid import BinOp, Call, Const, Proj, Var


class TestSelectFrom:
    def test_star(self):
        q = parse("SELECT * FROM customer c")
        assert isinstance(q.select[0], Star)
        assert q.tables[0].name == "customer"
        assert q.tables[0].alias == "c"

    def test_table_without_alias_uses_name(self):
        q = parse("SELECT * FROM customer")
        assert q.tables[0].alias == "customer"

    def test_as_alias(self):
        q = parse("SELECT * FROM customer AS c")
        assert q.tables[0].alias == "c"

    def test_multiple_tables(self):
        q = parse("SELECT * FROM customer c, dictionary d")
        assert [t.alias for t in q.tables] == ["c", "d"]

    def test_select_items_with_aliases(self):
        q = parse("SELECT c.name AS n, c.age FROM customer c")
        assert q.select[0].alias == "n"
        assert q.select[0].expr == Proj(Var("c"), "name")
        assert q.select[1].alias is None

    def test_distinct(self):
        assert parse("SELECT DISTINCT c.x FROM t c").distinct
        assert not parse("SELECT ALL c.x FROM t c").distinct

    def test_function_call_in_select(self):
        q = parse("SELECT prefix(c.phone) FROM customer c")
        assert q.select[0].expr == Call("prefix", (Proj(Var("c"), "phone"),))


class TestWhereGroupBy:
    def test_where_comparison(self):
        q = parse("SELECT * FROM t x WHERE x.a > 5")
        assert q.where == BinOp(">", Proj(Var("x"), "a"), Const(5))

    def test_where_and_or_precedence(self):
        q = parse("SELECT * FROM t x WHERE x.a = 1 OR x.b = 2 AND x.c = 3")
        assert q.where.op == "or"
        assert q.where.right.op == "and"

    def test_equals_normalized(self):
        q = parse("SELECT * FROM t x WHERE x.a = 1")
        assert q.where.op == "=="

    def test_group_by_and_having(self):
        q = parse(
            "SELECT x.k, count(x.v) FROM t x GROUP BY x.k HAVING count(x.v) > 2"
        )
        assert q.group_by == [Proj(Var("x"), "k")]
        assert q.having is not None

    def test_arithmetic_precedence(self):
        q = parse("SELECT * FROM t x WHERE x.a + 2 * 3 = 7")
        left = q.where.left
        assert left.op == "+"
        assert left.right.op == "*"

    def test_parenthesized_expression(self):
        q = parse("SELECT * FROM t x WHERE (x.a + 2) * 3 = 12")
        assert q.where.left.op == "*"

    def test_string_and_null_literals(self):
        q = parse("SELECT * FROM t x WHERE x.a = 'abc' AND x.b = NULL")
        conj = q.where
        assert conj.left.right == Const("abc")
        assert conj.right.right == Const(None)


class TestCleaningOps:
    def test_fd(self):
        q = parse("SELECT * FROM customer c FD(c.address, prefix(c.phone))")
        [op] = q.cleaning_ops
        assert isinstance(op, FDOp)
        assert op.lhs == (Proj(Var("c"), "address"),)
        assert op.rhs == (Call("prefix", (Proj(Var("c"), "phone"),)),)

    def test_fd_compound_lhs(self):
        q = parse("SELECT * FROM t l FD(l.orderkey, l.linenumber, l.suppkey)")
        [op] = q.cleaning_ops
        assert len(op.lhs) == 2 and len(op.rhs) == 1

    def test_fd_requires_two_args(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t l FD(l.a)")

    def test_dedup_full_form(self):
        q = parse("SELECT * FROM customer c DEDUP(token_filtering, LD, 0.8, c.address)")
        [op] = q.cleaning_ops
        assert isinstance(op, DedupOp)
        assert op.op == "token_filtering"
        assert op.metric == "LD"
        assert op.theta == 0.8
        assert op.attributes == (Proj(Var("c"), "address"),)

    def test_dedup_defaults(self):
        q = parse("SELECT * FROM customer c DEDUP(exact, c.name)")
        [op] = q.cleaning_ops
        assert op.metric == "LD" and op.theta == 0.8
        assert op.attributes == (Proj(Var("c"), "name"),)

    def test_cluster_by(self):
        q = parse(
            "SELECT * FROM customer c, dictionary d "
            "CLUSTER BY(token_filtering, LD, 0.8, c.name)"
        )
        [op] = q.cleaning_ops
        assert isinstance(op, ClusterByOp)
        assert op.term == Proj(Var("c"), "name")
        assert op.dictionary == "d"

    def test_multiple_ops_running_example(self):
        q = parse(
            "SELECT c.name, c.address, * FROM customer c, dictionary d "
            "FD(c.address, prefix(c.phone)) "
            "DEDUP(token_filtering, LD, 0.8, c.address) "
            "CLUSTER BY(token_filtering, LD, 0.8, c.name)"
        )
        assert [type(op).__name__ for op in q.cleaning_ops] == [
            "FDOp", "DedupOp", "ClusterByOp",
        ]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT * FROM t x LIMIT 5")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT *")
