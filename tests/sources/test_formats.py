"""Round-trip tests for every storage format."""

import pytest

from repro.errors import DataSourceError
from repro.sources import (
    Field,
    Schema,
    file_size,
    read_columnar,
    read_csv,
    read_json,
    read_xml,
    write_columnar,
    write_csv,
    write_json,
    write_xml,
)

FLAT_SCHEMA = Schema.of(id="int", name="str", score="float", active="bool")
NESTED_SCHEMA = Schema(
    (Field("title", "str"), Field("year", "int"), Field("authors", "list"))
)


def flat_rows():
    return [
        {"id": 1, "name": "alice", "score": 9.5, "active": True},
        {"id": 2, "name": 'has,"quotes"', "score": 0.5, "active": False},
        {"id": 3, "name": "", "score": 1.0, "active": True},
    ]


def nested_rows():
    return [
        {"title": "paper one", "year": 2001, "authors": ["a b", "c d"]},
        {"title": "paper two", "year": 2002, "authors": []},
    ]


class TestCSV:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, flat_rows(), FLAT_SCHEMA)
        back = read_csv(path, FLAT_SCHEMA)
        assert back[0]["id"] == 1 and back[0]["score"] == 9.5
        assert back[1]["name"] == 'has,"quotes"'

    def test_bool_cast(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, flat_rows(), FLAT_SCHEMA)
        back = read_csv(path, FLAT_SCHEMA)
        assert back[0]["active"] is True and back[1]["active"] is False

    def test_empty_becomes_none(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, flat_rows(), FLAT_SCHEMA)
        assert read_csv(path, FLAT_SCHEMA)[2]["name"] is None

    def test_list_field_round_trip(self, tmp_path):
        path = tmp_path / "nested.csv"
        write_csv(path, nested_rows(), NESTED_SCHEMA)
        back = read_csv(path, NESTED_SCHEMA)
        assert back[0]["authors"] == ["a b", "c d"]

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(path, flat_rows(), FLAT_SCHEMA)
        with pytest.raises(DataSourceError):
            read_csv(path, Schema.of(other="int"))

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataSourceError):
            read_csv(tmp_path / "nope.csv", FLAT_SCHEMA)


class TestJSON:
    def test_round_trip_nested(self, tmp_path):
        path = tmp_path / "data.json"
        write_json(path, nested_rows())
        assert read_json(path) == nested_rows()

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json}\n")
        with pytest.raises(DataSourceError):
            read_json(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1,2,3]\n")
        with pytest.raises(DataSourceError):
            read_json(path)


class TestXML:
    def test_round_trip_nested(self, tmp_path):
        path = tmp_path / "data.xml"
        write_xml(path, nested_rows())
        back = read_xml(path, NESTED_SCHEMA)
        assert back[0]["title"] == "paper one"
        assert back[0]["year"] == 2001
        assert back[0]["authors"] == ["a b", "c d"]

    def test_without_schema_strings(self, tmp_path):
        path = tmp_path / "data.xml"
        write_xml(path, nested_rows())
        back = read_xml(path)
        assert back[0]["year"] == "2001"

    def test_invalid_xml(self, tmp_path):
        path = tmp_path / "bad.xml"
        path.write_text("<open>")
        with pytest.raises(DataSourceError):
            read_xml(path)


class TestColumnar:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.rcol"
        write_columnar(path, flat_rows(), FLAT_SCHEMA)
        back, schema = read_columnar(path)
        assert back[0]["id"] == 1
        assert schema.names == FLAT_SCHEMA.names

    def test_nested_round_trip(self, tmp_path):
        path = tmp_path / "nested.rcol"
        write_columnar(path, nested_rows(), NESTED_SCHEMA)
        back, _ = read_columnar(path)
        assert back[0]["authors"] == ["a b", "c d"]
        assert back[1]["authors"] == []

    def test_compression_beats_csv_for_repetitive_data(self, tmp_path):
        rows = [{"id": i, "name": "same name", "score": 1.0, "active": True} for i in range(500)]
        csv_path = tmp_path / "d.csv"
        col_path = tmp_path / "d.rcol"
        write_csv(csv_path, rows, FLAT_SCHEMA)
        write_columnar(col_path, rows, FLAT_SCHEMA)
        assert file_size(col_path) < file_size(csv_path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rcol"
        path.write_bytes(b"NOTCOL\n12345")
        with pytest.raises(DataSourceError):
            read_columnar(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.rcol"
        write_columnar(path, flat_rows(), FLAT_SCHEMA)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 30])
        with pytest.raises(Exception):
            read_columnar(path)
