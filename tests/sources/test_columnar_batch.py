"""Unit tests for the ColumnBatch representation and the direct batch reader."""

from array import array

import pytest

from repro.errors import DataSourceError
from repro.sources import (
    ColumnBatch,
    Field,
    Schema,
    batch_partitions,
    read_columnar_batch,
    write_columnar,
)

ROWS = [
    {"id": i, "name": f"n{i}", "score": float(i) / 2, "flag": i % 2 == 0}
    for i in range(10)
]
SCHEMA = Schema(
    (Field("id", "int"), Field("name", "str"), Field("score", "float"), Field("flag", "bool"))
)


class TestConstruction:
    def test_round_trip(self):
        batch = ColumnBatch.from_records(ROWS)
        assert batch is not None
        assert len(batch) == 10
        assert batch.to_records() == ROWS

    def test_field_order_preserved(self):
        batch = ColumnBatch.from_records(ROWS)
        assert batch.names == ["id", "name", "score", "flag"]
        assert list(batch.to_records()[0]) == ["id", "name", "score", "flag"]

    def test_numeric_columns_packed(self):
        batch = ColumnBatch.from_records(ROWS)
        assert isinstance(batch.columns["id"].values, array)
        assert isinstance(batch.columns["score"].values, array)
        assert isinstance(batch.columns["name"].values, list)

    def test_nullable_columns_stay_lists(self):
        rows = [{"a": 1}, {"a": None}, {"a": 3}]
        batch = ColumnBatch.from_records(rows)
        assert isinstance(batch.columns["a"].values, list)
        assert batch.column("a") == [1, None, 3]

    def test_non_uniform_rejected(self):
        assert ColumnBatch.from_records([{"a": 1}, {"b": 2}]) is None
        assert ColumnBatch.from_records([{"a": 1}, "nope"]) is None

    def test_empty(self):
        batch = ColumnBatch.from_records([], SCHEMA)
        assert batch is not None and len(batch) == 0
        assert batch.to_records() == []


class TestSelectionVectors:
    def test_filter_composes_without_copy(self):
        batch = ColumnBatch.from_records(ROWS)
        evens = batch.filter([r["flag"] for r in ROWS])
        assert len(evens) == 5
        # Underlying columns are shared, only the selection changed.
        assert evens.columns is batch.columns
        first = evens.filter([i < 2 for i in range(5)])
        assert first.column("id") == [0, 2]

    def test_select_reorders(self):
        batch = ColumnBatch.from_records(ROWS)
        picked = batch.select([3, 1, 1])
        assert picked.column("id") == [3, 1, 1]

    def test_compact_materializes(self):
        batch = ColumnBatch.from_records(ROWS).filter(
            [r["id"] > 6 for r in ROWS]
        )
        dense = batch.compact()
        assert dense.selection is None
        assert dense.column("id") == [7, 8, 9]

    def test_row_respects_selection(self):
        batch = ColumnBatch.from_records(ROWS).select([4])
        assert batch.row(0)["id"] == 4


class TestCombinators:
    def test_project(self):
        batch = ColumnBatch.from_records(ROWS).project(["id", "flag"])
        assert batch.names == ["id", "flag"]
        assert set(batch.to_records()[0]) == {"id", "flag"}

    def test_with_column(self):
        batch = ColumnBatch.from_records(ROWS)
        doubled = batch.with_column("double", [r["id"] * 2 for r in ROWS])
        assert doubled.column("double")[3] == 6

    def test_with_column_length_mismatch(self):
        batch = ColumnBatch.from_records(ROWS)
        with pytest.raises(DataSourceError):
            batch.with_column("bad", [1, 2])

    def test_concat(self):
        a = ColumnBatch.from_records(ROWS[:4])
        b = ColumnBatch.from_records(ROWS[4:])
        merged = ColumnBatch.concat([a, b])
        assert merged.to_records() == ROWS

    def test_missing_column(self):
        batch = ColumnBatch.from_records(ROWS)
        with pytest.raises(DataSourceError):
            batch.column("nope")


class TestBatchPartitions:
    def test_round_robin_matches_engine_placement(self):
        batches = batch_partitions(ROWS, 4)
        assert batches is not None and len(batches) == 4
        assert batches[0].column("id") == [0, 4, 8]
        assert batches[3].column("id") == [3, 7]

    def test_non_uniform_returns_none(self):
        assert batch_partitions([{"a": 1}, {"b": 2}], 2) is None

    def test_caps_partitions_at_rows(self):
        batches = batch_partitions(ROWS[:2], 8)
        assert batches is not None and len(batches) == 2


class TestBatchReader:
    def test_read_columnar_batch_round_trip(self, tmp_path):
        path = tmp_path / "t.rcol"
        write_columnar(path, ROWS, SCHEMA)
        batch, schema = read_columnar_batch(path)
        assert schema == SCHEMA
        assert batch.to_records() == ROWS
        assert isinstance(batch.columns["id"].values, array)

    def test_read_columnar_batch_nested(self, tmp_path):
        rows = [{"k": i, "tags": [f"t{j}" for j in range(i)]} for i in range(5)]
        schema = Schema((Field("k", "int"), Field("tags", "list")))
        path = tmp_path / "nested.rcol"
        write_columnar(path, rows, schema)
        batch, _ = read_columnar_batch(path)
        assert batch.column("tags") == [r["tags"] for r in rows]

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataSourceError):
            read_columnar_batch(tmp_path / "absent.rcol")
