"""Unit tests for schemas, flattening, and the catalog."""

import pytest

from repro.errors import DataSourceError, SchemaError
from repro.sources import (
    Catalog,
    Field,
    Schema,
    flatten_records,
    nest_records,
    write_records,
)


class TestSchema:
    def test_of_builder(self):
        s = Schema.of(a="int", b="str")
        assert s.names == ["a", "b"]

    def test_cast_row(self):
        s = Schema.of(a="int", b="float")
        assert s.cast_row(["3", "4.5"]) == {"a": 3, "b": 4.5}

    def test_cast_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            Schema.of(a="int").cast_row(["1", "2"])

    def test_field_lookup(self):
        s = Schema.of(a="int")
        assert s.field("a").type == "int"
        with pytest.raises(SchemaError):
            s.field("z")

    def test_bad_cast(self):
        with pytest.raises(SchemaError):
            Field("a", "int").cast("not-a-number")

    def test_unknown_type(self):
        with pytest.raises(SchemaError):
            Field("a", "decimal").cast("1")

    def test_validate(self):
        s = Schema.of(a="int", b="str")
        s.validate({"a": 1, "b": "x"})
        with pytest.raises(SchemaError):
            s.validate({"a": 1})


class TestFlattening:
    def test_flatten_multiplies_rows(self):
        records = [{"t": "p1", "authors": ["a", "b", "c"]}]
        flat = flatten_records(records, "authors")
        assert len(flat) == 3
        assert {r["authors"] for r in flat} == {"a", "b", "c"}

    def test_flatten_empty_list_keeps_row(self):
        flat = flatten_records([{"t": "p", "authors": []}], "authors")
        assert len(flat) == 1 and flat[0]["authors"] is None

    def test_nest_inverts_flatten(self):
        records = [
            {"t": "p1", "authors": ["a", "b"]},
            {"t": "p2", "authors": ["c"]},
        ]
        flat = flatten_records(records, "authors")
        nested = nest_records(flat, ["t"], "authors")
        assert sorted(nested, key=lambda r: r["t"]) == records

    def test_flatten_blows_up_size(self):
        # The Fig. 7 motivation: flat representations carry many more rows.
        records = [{"t": f"p{i}", "authors": ["a"] * 4} for i in range(10)]
        assert len(flatten_records(records, "authors")) == 40


class TestCatalog:
    def test_register_and_load(self, tmp_path):
        schema = Schema.of(a="int")
        rows = [{"a": 1}, {"a": 2}]
        path = tmp_path / "t.csv"
        write_records(path, rows, "csv", schema)
        catalog = Catalog()
        catalog.register("t", path, "csv", schema)
        assert catalog.load("t") == rows
        assert catalog.names() == ["t"]

    def test_all_formats_loadable(self, tmp_path):
        schema = Schema.of(a="int", b="str")
        rows = [{"a": 1, "b": "x"}]
        catalog = Catalog()
        for fmt in ("csv", "json", "columnar"):
            path = tmp_path / f"t.{fmt}"
            write_records(path, rows, fmt, schema)
            catalog.register(f"t_{fmt}", path, fmt, schema)
            assert catalog.load(f"t_{fmt}")[0]["a"] == 1

    def test_xml_loadable(self, tmp_path):
        schema = Schema.of(a="int", b="str")
        rows = [{"a": 1, "b": "x"}]
        path = tmp_path / "t.xml"
        write_records(path, rows, "xml")
        catalog = Catalog()
        catalog.register("t", path, "xml", schema)
        assert catalog.load("t")[0]["a"] == 1

    def test_unknown_source(self):
        with pytest.raises(DataSourceError):
            Catalog().load("missing")

    def test_unknown_format(self, tmp_path):
        with pytest.raises(DataSourceError):
            Catalog().register("t", tmp_path / "f", "avro")

    def test_csv_requires_schema(self, tmp_path):
        with pytest.raises(DataSourceError):
            Catalog().register("t", tmp_path / "f.csv", "csv")

    def test_write_records_unknown_format(self, tmp_path):
        with pytest.raises(DataSourceError):
            write_records(tmp_path / "f", [], "avro")
