"""Property-based tests: normalization preserves comprehension semantics.

Random small comprehensions are generated, normalized, and both versions
evaluated with the reference interpreter — results must agree.  This is the
differential guarantee that makes the §4.2 rewrites trustworthy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monoid import (
    BagMonoid,
    BinOp,
    Bind,
    Comprehension,
    Const,
    Filter,
    Generator,
    SetMonoid,
    SumMonoid,
    Var,
    evaluate,
    evaluate_comprehension,
    normalize,
)

numbers = st.integers(min_value=-20, max_value=20)
collections = st.lists(numbers, min_size=0, max_size=6)


@st.composite
def simple_comprehensions(draw):
    """sum/bag/set comprehensions over 1-2 generators with filters/binds."""
    monoid = draw(st.sampled_from([SumMonoid(), BagMonoid(), SetMonoid()]))
    data_a = draw(collections)
    qualifiers = [Generator("x", Const(data_a))]
    env_vars = ["x"]
    if draw(st.booleans()):
        data_b = draw(collections)
        qualifiers.append(Generator("y", Const(data_b)))
        env_vars.append("y")
    if draw(st.booleans()):
        threshold = draw(numbers)
        var = draw(st.sampled_from(env_vars))
        qualifiers.append(Filter(BinOp("<", Var(var), Const(threshold))))
    if draw(st.booleans()):
        base = draw(st.sampled_from(env_vars))
        qualifiers.append(Bind("z", BinOp("+", Var(base), Const(draw(numbers)))))
        env_vars.append("z")
    head_var = draw(st.sampled_from(env_vars))
    head = BinOp("*", Var(head_var), Const(draw(st.integers(1, 3))))
    return Comprehension(monoid, head, tuple(qualifiers))


def run(expr):
    if isinstance(expr, Comprehension):
        return evaluate_comprehension(expr, {})
    return evaluate(expr, {}, {})


def canon(value):
    if isinstance(value, (list,)):
        return sorted(value)
    return value


@settings(max_examples=200)
@given(simple_comprehensions())
def test_normalization_preserves_semantics(comp):
    normalized = normalize(comp)
    assert canon(run(normalized)) == canon(run(comp))


@settings(max_examples=100)
@given(simple_comprehensions())
def test_normalization_is_idempotent(comp):
    once = normalize(comp)
    twice = normalize(once)
    assert once == twice


@settings(max_examples=100)
@given(simple_comprehensions())
def test_normalized_form_has_no_binds(comp):
    normalized = normalize(comp)
    if isinstance(normalized, Comprehension):
        assert all(not isinstance(q, Bind) for q in normalized.qualifiers)
