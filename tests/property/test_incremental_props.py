"""Hypothesis: incremental maintenance equals a cold re-run, byte for byte.

``append_rows``/``update_rows`` patch resident per-operation state (FD
violation maps, dedup blocks, DC group index) instead of rescanning.  That
is a pure transport/CPU optimisation: after *any* interleaving of deltas
and checks, the emitted result must be ``repr``-identical to registering
the post-delta table in a fresh session and checking cold — on the row,
vectorized, and parallel backends alike.  The generators bias toward the
hard cases: null-laden rows, duplicate ``_rid`` collisions (which must
trip the dedup gate into a cold fallback, not a wrong answer), empty
deltas, and updates that resolve pre-existing violations.
"""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from fixtures import SETTINGS, WORKERS, record_sets, values, with_rids
from repro import CleanDB

BACKENDS = ("row", "vectorized", "parallel")
RULE = "t1.a < t2.a and t1.b > t2.b"

_NAMES = itertools.count()

plain_row = st.fixed_dictionaries({"a": values, "b": values, "c": values})
deltas = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.lists(plain_row, max_size=4)),
        st.tuples(
            st.just("update"),
            st.lists(
                st.tuples(st.integers(min_value=0, max_value=30), plain_row),
                max_size=3,
            ),
        ),
    ),
    min_size=1,
    max_size=4,
)


@pytest.fixture(scope="module", params=BACKENDS)
def dbs(request):
    """One incremental session + one cold-oracle session per backend.

    Sessions are module-scoped (worker-process spawn is too costly per
    Hypothesis example); isolation comes from a fresh table name per use.
    """
    kwargs = dict(num_nodes=3, execution=request.param)
    if request.param == "parallel":
        kwargs["workers"] = WORKERS
    db = CleanDB(incremental=True, **kwargs)
    oracle = CleanDB(**kwargs)
    yield db, oracle
    db.close()
    oracle.close()


def _check_all(db, name, block_on):
    return (
        repr(db.check_fd(name, ["a"], ["b"])),
        repr(db.check_fd(name, ["a"], ["b"], keep_records=False)),
        repr(db.check_dc(name, RULE)),
        repr(db.deduplicate(name, ["c"], theta=0.5, block_on=block_on)),
    )


def _apply(db, name, kind, payload, collide):
    if kind == "append":
        rows = [dict(r) for r in payload]
        if collide and rows and len(db.table(name)):
            rows[0]["_rid"] = db.table(name)[0]["_rid"]  # duplicate rid
        db.append_rows(name, rows)
        return
    table = db.table(name)
    if not table:
        return
    rid_to_row = {}
    for idx, row in payload:
        rid_to_row[table[idx % len(table)]["_rid"]] = dict(row)
    if rid_to_row:
        db.update_rows(name, rid_to_row)


@given(
    records=record_sets,
    ops=deltas,
    collide=st.booleans(),
    block_on=st.sampled_from([None, "a"]),
)
@SETTINGS
def test_interleaved_deltas_match_cold_oracle(dbs, records, ops, collide, block_on):
    db, oracle = dbs
    name = f"t{next(_NAMES)}"
    db.register_table(name, with_rids(records))
    _check_all(db, name, block_on)  # build resident state pre-delta
    for kind, payload in ops:
        _apply(db, name, kind, payload, collide)
        got = _check_all(db, name, block_on)
        oname = f"o{next(_NAMES)}"
        oracle.register_table(oname, [dict(r) for r in db.table(name)])
        assert got == _check_all(oracle, oname, block_on)


@pytest.mark.parametrize("execution", BACKENDS)
def test_empty_delta_is_noop(execution):
    kwargs = dict(num_nodes=3, execution=execution)
    if execution == "parallel":
        kwargs["workers"] = WORKERS
    db = CleanDB(incremental=True, **kwargs)
    try:
        db.register_table("t", with_rids([{"a": i % 2, "b": i % 3} for i in range(9)]))
        before = repr(db.check_fd("t", ["a"], ["b"]))
        version = db._table_versions["t"]
        db.append_rows("t", [])
        db.update_rows("t", {})
        assert db._table_versions["t"] == version
        assert repr(db.check_fd("t", ["a"], ["b"])) == before
    finally:
        db.close()


@pytest.mark.parametrize("execution", BACKENDS)
def test_violation_resolving_update(execution):
    """An update that *removes* violations must shrink every result —
    maintained state can't merely accumulate."""
    kwargs = dict(num_nodes=3, execution=execution)
    if execution == "parallel":
        kwargs["workers"] = WORKERS
    db = CleanDB(incremental=True, **kwargs)
    try:
        rows = [{"a": i % 3, "b": i % 4, "c": i} for i in range(24)]
        db.register_table("t", with_rids(rows))
        assert db.check_fd("t", ["a"], ["b"])
        assert db.check_dc("t", "t1.a < t2.a and t1.b > t2.b")
        # Make the table FD- and DC-clean: b a function of a, b ordered
        # with a.
        db.update_rows(
            "t", {i: {"a": i, "b": i, "c": i} for i in range(24)}
        )
        assert db.check_fd("t", ["a"], ["b"]) == []
        assert db.check_dc("t", "t1.a < t2.a and t1.b > t2.b") == []
    finally:
        db.close()


def test_incremental_path_actually_taken():
    """Guard against the whole suite passing vacuously via cold fallback:
    on a large-enough table every maintained operation must serve its
    post-delta result from resident state (an ``incremental:`` op) and the
    mutation must ship only the delta (``rows_delta``)."""
    db = CleanDB(num_nodes=3, execution="parallel", workers=WORKERS,
                 incremental=True)
    try:
        rows = [{"a": i % 5, "b": i % 4, "c": i % 7} for i in range(40)]
        db.register_table("t", with_rids(rows))
        db.check_fd("t", ["a"], ["b"])
        db.check_dc("t", RULE)
        db.deduplicate("t", ["c"], theta=0.5)
        db.cluster.metrics.reset()
        db.append_rows("t", [{"a": 1, "b": 2, "c": 3}])
        db.update_rows("t", {7: {"a": 0, "b": 0, "c": 0}})
        db.check_fd("t", ["a"], ["b"])
        db.check_dc("t", RULE)
        db.deduplicate("t", ["c"], theta=0.5)
        names = [op.name for op in db.cluster.metrics.ops]
        assert names.count("delta:t") == 2
        assert db.cluster.metrics.rows_delta == 2
        for kind in ("fd", "dc", "dedup"):
            assert f"incremental:{kind}:t" in names
    finally:
        db.close()
