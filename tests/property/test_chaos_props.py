"""Hypothesis chaos: random fault schedules must be invisible in results.

Each example builds a random :class:`FaultPlan` (kills before/after a task,
hung workers, dropped replies — all keyed by deterministic dispatch counts)
and runs a random interleaving of FD / dedup / DC checks and ``append_rows``
deltas against a 2-worker pool carrying two tenants.  The invariants:

* every check's result is ``repr``-identical to a fault-free cold oracle —
  recovery is transparent, never approximate;
* recovery really is recovery: nothing degrades to the row backend
  (``degraded_ops == 0``), so parity can't pass vacuously via fallback;
* the *other* tenant on the shared pool keeps its pins — the exact same
  refs resolve after the chaos, proving ``invalidate_store()`` (which
  would evict every tenant) stayed out of the recovery path.

Faults target generation 0 only, so replacement workers run fault-free:
inject failures, then prove the system heals — the chaos-testing shape the
fault plan's ``gen`` field exists for.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from fixtures import values, with_rids
from repro import CleanDB
from repro.engine import FaultPlan, WorkerPool

RULE = "t1.a < t2.a and t1.b > t2.b"

_NAMES = itertools.count()

#: Chaos examples each spawn (and may kill + respawn) worker processes, so
#: the example budget is deliberately small; determinism comes from the
#: plan, not from repetition.
CHAOS_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

plain_row = st.fixed_dictionaries({"a": values, "b": values, "c": values})

#: (worker, kind, nth) triples; ``corrupt`` is exercised separately in
#: tests/engine/test_faults.py — here the schedule mixes the process-level
#: failures that force replacement + lineage rebuild.
fault_schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1),
        st.sampled_from(["kill_before", "kill_after", "delay", "drop"]),
        st.integers(min_value=1, max_value=8),
    ),
    max_size=3,
)

op_sequences = st.lists(
    st.sampled_from(["fd", "dedup", "dc", "append"]), min_size=2, max_size=5
)


def _build_plan(schedule):
    plan = FaultPlan()
    for worker, kind, nth in schedule:
        if kind == "delay":
            # Far beyond the watchdog deadline: a genuinely hung worker.
            plan = plan.delay(worker, nth, seconds=30.0)
        else:
            plan = getattr(plan, kind)(worker, nth)
    return plan


def _run_op(db, name, op):
    if op == "fd":
        return repr(db.check_fd(name, ["a"], ["b"]))
    if op == "dc":
        return repr(db.check_dc(name, RULE))
    return repr(db.deduplicate(name, ["c"], theta=0.5))


@pytest.fixture(scope="module")
def oracle():
    """Fault-free cold oracle (row backend; cross-backend parity is locked
    down by the dedicated parity suites)."""
    db = CleanDB(num_nodes=3)
    yield db
    db.close()


@given(
    records=st.lists(plain_row, min_size=6, max_size=14),
    schedule=fault_schedules,
    ops=op_sequences,
    extra=st.lists(plain_row, min_size=1, max_size=4),
)
@CHAOS_SETTINGS
def test_random_fault_schedules_are_invisible(oracle, records, schedule, ops, extra):
    pool = WorkerPool(2, fault_plan=_build_plan(schedule), task_deadline=0.4)
    try:
        chaos = CleanDB(
            num_nodes=3, execution="parallel", pool=pool,
            incremental=True, namespace="chaos",
        )
        survivor = CleanDB(
            num_nodes=3, execution="parallel", pool=pool, namespace="survivor"
        )
        survivor.register_table(
            "s", with_rids([{"a": i % 3, "b": i % 2, "c": i} for i in range(8)])
        )
        skey = survivor._pinned_key("s")
        srefs = pool.pinned(*skey)
        assert srefs is not None
        sparts = repr(pool.fetch(srefs))

        chaos.register_table("t", with_rids(records))
        for op in ops:
            if op == "append":
                chaos.append_rows("t", [dict(r) for r in extra])
                continue
            got = _run_op(chaos, "t", op)
            oname = f"o{next(_NAMES)}"
            oracle.register_table(oname, [dict(r) for r in chaos.table("t")])
            assert got == _run_op(oracle, oname, op)

        # Recovery was real recovery: nothing fell back to the row backend,
        # so the parity above wasn't satisfied vacuously.
        assert chaos.cluster.metrics.degraded_ops == 0
        # The surviving tenant's pins were never evicted: the exact refs
        # captured before the chaos still resolve to the same partitions.
        assert pool.pinned(*skey) == srefs
        assert repr(pool.fetch(srefs)) == sparts
    finally:
        pool.shutdown()
