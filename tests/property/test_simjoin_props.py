"""Hypothesis: the filtered kernel equals naive all-pairs on every backend.

The similarity kernel's filters (length, q-gram count, DP banding,
ownership) must be *lossless*: for random record sets and thresholds, the
duplicate pair set produced with every filter on equals the naive
O(n²) all-pairs result — on the row, parallel (real worker processes), and
columnar backends alike.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cleaning import NO_FILTERS, deduplicate, deduplicate_columnar
from repro.cleaning.dedup import deduplicate_parallel
from repro.cleaning.similarity import levenshtein_similarity
from repro.engine import Cluster

WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

ATTRS = ["a", "b"]
THETAS = st.sampled_from([0.6, 0.8, 0.9])

words = st.text(alphabet="abcde ", min_size=0, max_size=8)
record_sets = st.lists(
    st.fixed_dictionaries({"a": words, "b": words}), min_size=2, max_size=9
)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _one_block(record):
    """Constant blocking key: every pair is a candidate (module-level so the
    parallel backend can pickle it)."""
    return 0


def _with_rids(records):
    return [dict(r, _rid=i) for i, r in enumerate(records)]


def naive_pairs(records, theta):
    """The unfiltered O(n²) reference: plain metric, plain average."""
    out = set()
    for i in range(len(records)):
        for j in range(i + 1, len(records)):
            total = sum(
                levenshtein_similarity(str(records[i][a]), str(records[j][a]))
                for a in ATTRS
            )
            if total / len(ATTRS) >= theta:
                out.add((i, j))
    return out


def pair_ids(dataset):
    return {(p.left_id, p.right_id) for p in dataset.collect()}


@pytest.fixture(scope="module")
def par_cluster():
    """One worker pool for the whole module: process spawn is too costly to
    repeat per Hypothesis example."""
    with Cluster(num_nodes=3, workers=WORKERS) as cluster:
        yield cluster


@given(record_sets, THETAS)
@SETTINGS
def test_row_backend_matches_naive(records, theta):
    records = _with_rids(records)
    cluster = Cluster(num_nodes=3)
    found = pair_ids(
        deduplicate(
            cluster.parallelize(records), ATTRS, theta=theta, block_on=_one_block
        )
    )
    assert found == naive_pairs(records, theta)
    assert cluster.metrics.verified <= cluster.metrics.comparisons


@given(record_sets, THETAS)
@SETTINGS
def test_row_backend_token_blocking_matches_filterless(records, theta):
    """Overlapping token blocks + ownership: same pairs as the naive kernel
    configuration over the same blocking."""
    records = _with_rids(records)
    results = {}
    for label, filters in (("on", None), ("off", NO_FILTERS)):
        cluster = Cluster(num_nodes=3)
        results[label] = pair_ids(
            deduplicate(
                cluster.parallelize([dict(r) for r in records]),
                ATTRS,
                theta=theta,
                op="token_filtering",
                filters=filters,
            )
        )
    assert results["on"] == results["off"]


@given(record_sets, THETAS)
@SETTINGS
def test_parallel_backend_matches_naive(par_cluster, records, theta):
    records = _with_rids(records)
    found = pair_ids(
        deduplicate_parallel(
            par_cluster, records, ATTRS, theta=theta, block_on=_one_block
        )
    )
    assert found == naive_pairs(records, theta)


@given(record_sets, THETAS)
@SETTINGS
def test_columnar_backend_matches_naive(records, theta):
    records = _with_rids(records)
    cluster = Cluster(num_nodes=3)
    found = pair_ids(
        deduplicate_columnar(
            cluster, records, ATTRS, theta=theta, block_on=_one_block
        )
    )
    assert found == naive_pairs(records, theta)
    assert cluster.metrics.verified <= cluster.metrics.comparisons
