"""Property-based tests for similarity metrics and tokenization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cleaning import (
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    qgrams,
    similar,
)

words = st.text(alphabet="abcdefghij ", min_size=0, max_size=12)


@given(words, words)
def test_levenshtein_symmetry(a, b):
    assert levenshtein_distance(a, b) == levenshtein_distance(b, a)


@given(words)
def test_levenshtein_identity(a):
    assert levenshtein_distance(a, a) == 0
    assert levenshtein_similarity(a, a) == 1.0


@given(words, words, words)
def test_levenshtein_triangle_inequality(a, b, c):
    assert levenshtein_distance(a, c) <= (
        levenshtein_distance(a, b) + levenshtein_distance(b, c)
    )


@given(words, words)
def test_levenshtein_bounded_by_longer_string(a, b):
    assert levenshtein_distance(a, b) <= max(len(a), len(b))


@given(words, words)
def test_similarities_in_unit_interval(a, b):
    for metric in (levenshtein_similarity, jaccard_similarity, jaro_winkler_similarity):
        assert 0.0 <= metric(a, b) <= 1.0


@given(words, words, st.floats(min_value=0.1, max_value=1.0))
def test_banded_similar_agrees_with_plain(a, b, theta):
    assert similar("LD", a, b, theta) == (levenshtein_similarity(a, b) >= theta)


@given(words, st.integers(min_value=1, max_value=5))
def test_qgram_count(text, q):
    grams = qgrams(text, q)
    if len(text) >= q:
        assert len(grams) == len(text) - q + 1
    elif text:
        assert grams == [text]
    else:
        assert grams == []


@given(words, st.integers(min_value=1, max_value=4))
def test_qgrams_are_substrings(text, q):
    assert all(g in text for g in qgrams(text, q))


@given(st.text(alphabet="abc", min_size=1, max_size=10))
def test_one_edit_keeps_shared_qgram_for_long_words(word):
    # Token filtering's recall argument: a dirty word keeps at least one
    # clean token when only a small fraction of characters changed.
    if len(word) >= 4:
        edited = "z" + word[1:]  # one substitution at the edge
        shared = set(qgrams(word, 2)) & set(qgrams(edited, 2))
        assert shared
