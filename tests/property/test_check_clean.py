"""Zero-diagnostics property: every shipped workload is statically clean.

The analyzer's false-positive budget is zero — the moment ``repro check``
flags a query the repo itself runs (the paper workloads, the differential
catalogs, the serving examples), users stop trusting it.  This suite
pins that property over every query family the language supports, in
every execution mode, plus the canonical DC rules over generated TPC-H
data.  It also locks the CM-code registry to the documentation: every
code the analyzer can emit has a row in ``docs/DIAGNOSTICS.md``.
"""

import re
from dataclasses import replace
from pathlib import Path

import pytest

from repro import CleanDB
from repro.core.semantics import CODES
from repro.datasets.tpch import generate_lineitem

REPO_ROOT = Path(__file__).resolve().parents[2]


def customers():
    return [
        {
            "name": f"client {i:02d}",
            "address": f"addr{i % 4}",
            "phone": f"{700 + i % 4}-{i:04d}",
            "nationkey": i % 3,
        }
        for i in range(24)
    ]


#: The full query catalog: paper figures, differential-test families,
#: serving examples.  Each must produce zero diagnostics.
WORKLOADS = [
    "SELECT * FROM customer c",
    "SELECT c.name AS n FROM customer c WHERE c.nationkey > 0",
    "SELECT DISTINCT c.address FROM customer c",
    "SELECT c.address, count(c.name) AS cnt FROM customer c GROUP BY c.address",
    "SELECT * FROM customer c FD(c.address, c.nationkey)",
    "SELECT * FROM customer c FD(c.address, prefix(c.phone))",
    "SELECT * FROM customer c FD(c.address, prefix(c.phone)) FD(c.address, c.nationkey)",
    "SELECT * FROM customer c DEDUP(exact, LD, 0.5, c.address)",
    "SELECT * FROM customer c DEDUP(token_filtering, LD, 0.8, c.name)",
    "SELECT * FROM customer c FD(c.address, c.nationkey) DEDUP(exact, LD, 0.5, c.address)",
    (
        "SELECT * FROM customer c, dictionary d "
        "CLUSTER BY(token_filtering, LD, 0.7, c.name)"
    ),
    (
        "SELECT c.name, c.address, * FROM customer c, dictionary d "
        "CLUSTER BY(token_filtering, LD, 0.7, c.name)"
    ),
]

#: Canonical DC rules (§8.3's ψ family) in source form.
DC_RULES = [
    ("t1.price < t2.price and t1.discount > t2.discount", "t1.price < 1000"),
    ("t1.suppkey != t2.suppkey and t1.orderkey == t2.orderkey", ""),
]


@pytest.fixture(scope="module")
def db():
    db = CleanDB(num_nodes=2)
    db.register_table("customer", customers())
    db.register_table("dictionary", ["client 01", "client 02"])
    return db


class TestWorkloadsAreClean:
    @pytest.mark.parametrize("sql", WORKLOADS)
    def test_zero_diagnostics_row(self, db, sql):
        assert db.check(sql) == []

    @pytest.mark.parametrize("sql", WORKLOADS)
    def test_zero_diagnostics_vectorized(self, db, sql):
        db.config = replace(db.config, execution="vectorized")
        try:
            assert db.check(sql) == []
        finally:
            db.config = replace(db.config, execution="row")

    @pytest.mark.parametrize("sql", WORKLOADS)
    def test_zero_diagnostics_parallel(self, db, sql):
        # The parallel analysis adds CM501 closure checks; the builtin
        # registry must stay exempt.  The config flip alone spawns no pool.
        db.config = replace(db.config, execution="parallel")
        try:
            assert db.check(sql) == []
        finally:
            db.config = replace(db.config, execution="row")


class TestDCRulesAreClean:
    @pytest.mark.parametrize("rule,where", DC_RULES)
    def test_tpch_rules(self, rule, where):
        db = CleanDB(num_nodes=2)
        rows = generate_lineitem(scale_factor=1, rows_per_sf=48)
        db.register_table("lineitem", rows)
        assert db.check(rule=rule, where=where, on="lineitem") == []


class TestDiagnosticsDocumentation:
    def test_every_code_is_documented(self):
        doc = (REPO_ROOT / "docs" / "DIAGNOSTICS.md").read_text(encoding="utf-8")
        documented = set(re.findall(r"\bCM\d{3}\b", doc))
        registered = set(CODES)
        missing = registered - documented
        assert not missing, f"codes missing from docs/DIAGNOSTICS.md: {sorted(missing)}"
        phantom = documented - registered
        assert not phantom, f"documented codes the analyzer never emits: {sorted(phantom)}"

    def test_code_families_are_structured(self):
        # CM0xx parse, CM1xx names, CM2xx types, CM3xx DCs, CM4xx monoids,
        # CM5xx distribution, CM6xx plan invariants.
        for code in CODES:
            assert code[2] in "0123456", code
