"""Property-based differential test: compiled plans ≡ reference semantics.

Random select-project-join comprehensions over small random tables are
normalized, translated to algebra, executed by the physical Executor, and
compared against the reference comprehension interpreter.  This is the
correctness argument for the whole compilation pipeline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import Translator
from repro.engine import Cluster, Dataset
from repro.monoid import (
    BagMonoid,
    BinOp,
    Comprehension,
    Const,
    Filter,
    Generator,
    Proj,
    SetMonoid,
    SumMonoid,
    Var,
    evaluate_comprehension,
    normalize,
)
from repro.physical import Executor

rows = st.lists(
    st.fixed_dictionaries(
        {"a": st.integers(0, 5), "b": st.integers(-10, 10)}
    ),
    min_size=0,
    max_size=8,
)


@st.composite
def spj_comprehensions(draw):
    """Comprehensions of shape sum/bag{ head | x <- t1 [, y <- t2] [, filters] }."""
    monoid = draw(st.sampled_from([SumMonoid(), BagMonoid()]))
    two_tables = draw(st.booleans())
    qualifiers = [Generator("x", Var("t1"))]
    head_side = "x"
    if two_tables:
        qualifiers.append(Generator("y", Var("t2")))
        if draw(st.booleans()):
            # Cross-table equality -> should lower to an equi-join.
            qualifiers.append(
                Filter(BinOp("==", Proj(Var("x"), "a"), Proj(Var("y"), "a")))
            )
        head_side = draw(st.sampled_from(["x", "y"]))
    if draw(st.booleans()):
        qualifiers.append(
            Filter(BinOp("<", Proj(Var("x"), "b"), Const(draw(st.integers(-5, 5)))))
        )
    head = Proj(Var(head_side), "b")
    return Comprehension(monoid, head, tuple(qualifiers))


def canon(value):
    if isinstance(value, Dataset):
        value = value.collect()
    if isinstance(value, list):
        return sorted(value, key=repr)
    return value


@settings(max_examples=120, deadline=None)
@given(spj_comprehensions(), rows, rows)
def test_compiled_plan_matches_reference(comp, t1, t2):
    reference = evaluate_comprehension(comp, {"t1": t1, "t2": t2})

    normalized = normalize(comp)
    if not isinstance(normalized, Comprehension):
        # Statically collapsed to a constant (e.g. empty table).
        from repro.monoid import evaluate

        assert canon(evaluate(normalized, {}, {})) == canon(reference)
        return
    plan = Translator({"t1", "t2"}).translate(normalized)
    executor = Executor(Cluster(num_nodes=3), {"t1": t1, "t2": t2})
    compiled = executor.execute(plan)
    assert canon(compiled) == canon(reference)


@settings(max_examples=60, deadline=None)
@given(rows)
def test_set_monoid_compiled_distinct(t1):
    comp = Comprehension(
        SetMonoid(), Proj(Var("x"), "a"), (Generator("x", Var("t1")),)
    )
    reference = evaluate_comprehension(comp, {"t1": t1})
    normalized = normalize(comp)
    if not isinstance(normalized, Comprehension):
        return
    plan = Translator({"t1"}).translate(normalized)
    executor = Executor(Cluster(num_nodes=3), {"t1": t1})
    compiled = executor.execute(plan)
    assert frozenset(compiled.collect()) == reference
