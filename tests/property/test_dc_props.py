"""Hypothesis: the planned DC kernel equals a naive O(n²) oracle everywhere.

The banded plan (equality-prefix hashing + sorted range scan + residual
verification) must be *lossless*: for random — and null-laden — record
sets and random constraint shapes, the violation pair set equals a naive
nested-loop oracle applying the same null-safe three-valued semantics, on
the row, parallel (real worker processes), and columnar backends alike.
The three backends must additionally agree pair-for-pair in order
(byte-identical output), which the cross-backend test pins down.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from fixtures import SETTINGS, WORKERS, record_sets, with_rids
from repro.cleaning.denial import (
    DenialConstraint,
    SingleFilter,
    TuplePredicate,
    check_dc,
    check_dc_columnar,
    check_dc_parallel,
)
from repro.engine import Cluster

CONSTRAINTS = st.sampled_from(
    [
        # Rule-ψ shape: two ordered predicates (planner must pick a band).
        DenialConstraint(
            predicates=(
                TuplePredicate("a", "<", "a"),
                TuplePredicate("b", ">", "b"),
            ),
            name="psi",
        ),
        # ψ with a left filter.
        DenialConstraint(
            predicates=(
                TuplePredicate("a", "<", "a"),
                TuplePredicate("b", ">", "b"),
            ),
            left_filters=(SingleFilter("a", "<", 1),),
            name="psi_capped",
        ),
        # Equality prefix + band + residual.
        DenialConstraint(
            predicates=(
                TuplePredicate("c", "==", "c"),
                TuplePredicate("a", "<=", "a"),
                TuplePredicate("b", "!=", "b"),
            ),
            name="eq_band_res",
        ),
        # Symmetric (both orders can violate): exercises the
        # exactly-once unordered-pair rule.
        DenialConstraint(
            predicates=(
                TuplePredicate("a", "==", "a"),
                TuplePredicate("b", "!=", "b"),
            ),
            name="fd_like",
        ),
        # Ordered-only, non-strict both ways (ties everywhere).
        DenialConstraint(
            predicates=(
                TuplePredicate("a", ">=", "a"),
                TuplePredicate("b", "<=", "b"),
            ),
            name="geq_leq",
        ),
        # No ordered predicate at all: degenerate band-less plan.
        DenialConstraint(
            predicates=(TuplePredicate("b", "!=", "b"),),
            left_filters=(SingleFilter("c", ">=", 0),),
            name="ne_only",
        ),
    ]
)


_with_rids = with_rids


def oracle_pairs(records, constraint):
    """Naive nested loop under the kernel's contract: null-safe
    three-valued predicates, stable-rid self-pair skip, and each unordered
    pair reported once (rid-ordered) when both orders violate."""
    out = set()
    for t1 in records:
        for t2 in records:
            if not constraint.violated_by(t1, t2):
                continue
            if t1["_rid"] > t2["_rid"] and constraint.violated_by(t2, t1):
                continue
            out.add((t1["_rid"], t2["_rid"]))
    return out


def rid_pairs(dataset):
    return {(t1["_rid"], t2["_rid"]) for t1, t2 in dataset.collect()}


@pytest.fixture(scope="module")
def par_cluster():
    """One worker pool for the whole module: process spawn is too costly to
    repeat per Hypothesis example."""
    with Cluster(num_nodes=3, workers=WORKERS) as cluster:
        yield cluster


@given(record_sets, CONSTRAINTS)
@SETTINGS
def test_row_banded_matches_oracle(records, constraint):
    records = _with_rids(records)
    cluster = Cluster(num_nodes=3)
    ds = cluster.parallelize(records)
    found = rid_pairs(check_dc(ds, constraint, strategy="banded"))
    assert found == oracle_pairs(records, constraint)
    # The banded scan never examines more than the pair universe.
    assert cluster.metrics.verified <= cluster.metrics.comparisons


@given(record_sets, CONSTRAINTS)
@SETTINGS
def test_parallel_banded_matches_oracle(par_cluster, records, constraint):
    records = _with_rids(records)
    found = rid_pairs(check_dc_parallel(par_cluster, records, constraint))
    assert found == oracle_pairs(records, constraint)


@given(record_sets, CONSTRAINTS)
@SETTINGS
def test_columnar_banded_matches_oracle(records, constraint):
    records = _with_rids(records)
    cluster = Cluster(num_nodes=3)
    found = rid_pairs(check_dc_columnar(cluster, records, constraint))
    assert found == oracle_pairs(records, constraint)


@given(record_sets, CONSTRAINTS)
@SETTINGS
def test_backends_byte_identical(par_cluster, records, constraint):
    """Row, parallel, and columnar produce the same pairs in the same
    order — not merely the same set."""
    records = _with_rids(records)
    row_cluster = Cluster(num_nodes=3)
    row = check_dc(
        row_cluster.parallelize(records), constraint, strategy="banded"
    ).collect()
    par = check_dc_parallel(par_cluster, records, constraint).collect()
    col_cluster = Cluster(num_nodes=3)
    col = check_dc_columnar(col_cluster, records, constraint).collect()
    assert par == row
    assert col == row


@given(record_sets)
@SETTINGS
def test_banded_agrees_with_matrix_on_asymmetric_rule(records):
    """For a strict asymmetric rule (both orders can never violate at
    once), the banded kernel and the all-pairs matrix strategy find the
    identical violation set."""
    constraint = DenialConstraint(
        predicates=(
            TuplePredicate("a", "<", "a"),
            TuplePredicate("b", ">", "b"),
        ),
    )
    records = _with_rids(records)
    banded = rid_pairs(
        check_dc(
            Cluster(num_nodes=3).parallelize(records), constraint, "banded"
        )
    )
    matrix = rid_pairs(
        check_dc(
            Cluster(num_nodes=3).parallelize(records), constraint, "matrix"
        )
    )
    assert banded == matrix
