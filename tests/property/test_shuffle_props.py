"""Property-based tests for the real exchange (`engine.shuffle.exchange`).

The exchange is the one place records cross process boundaries, so its
invariants are the backbone of every parallel wide dependency:

* the multiset of records is preserved for any worker/partition count;
* records with equal keys are co-located in one output partition;
* hash and sort (range) strategies agree on *grouped* results;
* routing in worker processes is byte-identical to routing inline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Cluster, WorkerPool
from repro.engine.shuffle import exchange, partition_by_key

# Homogeneous key pools keep range partitioning well-defined (keys must be
# mutually comparable); records are (key, value) pairs.
int_keyed = st.lists(
    st.tuples(st.integers(0, 12), st.integers(-100, 100)), min_size=0, max_size=80
)
str_keyed = st.lists(
    st.tuples(st.text("abcde", min_size=0, max_size=4), st.integers(-100, 100)),
    min_size=0,
    max_size=80,
)
keyed_records = int_keyed | str_keyed

source_partitions = st.integers(min_value=1, max_value=6)
target_partitions = st.integers(min_value=1, max_value=7)
kinds = st.sampled_from(["hash", "sort", "local"])


def _split(data, parts):
    out = [[] for _ in range(parts)]
    for i, record in enumerate(data):
        out[i % parts].append(record)
    return out


# Shared pool for the pooled-routing property: one pool across examples
# keeps the suite fast; shut down at module teardown via the fixture below.
_POOL = None


def _shared_pool():
    global _POOL
    if _POOL is None or _POOL.closed:
        _POOL = WorkerPool(2)
    return _POOL


def teardown_module(module):
    if _POOL is not None:
        _POOL.shutdown()


@settings(max_examples=40)
@given(keyed_records, source_partitions, target_partitions, kinds)
def test_exchange_preserves_multiset(data, src, n, kind):
    cluster = Cluster(num_nodes=3)
    out, moved, cost = exchange(cluster, _split(data, src), n, kind=kind)
    assert moved == len(data)
    assert cost >= 0.0
    flat = [record for part in out for record in part]
    assert sorted(map(repr, flat)) == sorted(map(repr, data))


@settings(max_examples=40)
@given(keyed_records, source_partitions, target_partitions, kinds)
def test_exchange_colocates_equal_keys(data, src, n, kind):
    cluster = Cluster(num_nodes=3)
    out, _, _ = exchange(cluster, _split(data, src), n, kind=kind)
    location: dict = {}
    for index, part in enumerate(out):
        for key, _ in part:
            assert location.setdefault(repr(key), index) == index


@settings(max_examples=40)
@given(keyed_records, source_partitions, target_partitions)
def test_hash_and_sort_agree_on_grouped_results(data, src, n):
    cluster = Cluster(num_nodes=3)
    grouped = {}
    for kind in ("hash", "sort"):
        out, _, _ = exchange(cluster, _split(data, src), n, kind=kind)
        groups: dict = {}
        for part in out:
            for key, values in partition_by_key(part).items():
                groups.setdefault(repr(key), []).extend(values)
        grouped[kind] = {k: sorted(v) for k, v in groups.items()}
    assert grouped["hash"] == grouped["sort"]


@settings(max_examples=40)
@given(keyed_records, source_partitions, target_partitions)
def test_exchange_is_deterministic_in_order(data, src, n):
    """Two serial runs produce byte-identical partition contents."""
    cluster = Cluster(num_nodes=3)
    first, _, _ = exchange(cluster, _split(data, src), n, kind="hash")
    second, _, _ = exchange(cluster, _split(data, src), n, kind="hash")
    assert repr(first) == repr(second)


@settings(max_examples=15, deadline=None)
@given(keyed_records, source_partitions, target_partitions, kinds)
def test_pooled_routing_matches_serial(data, src, n, kind):
    """Routing in real worker processes is byte-identical to inline routing
    — same partitions, same order — for any worker/partition count."""
    cluster = Cluster(num_nodes=3)
    serial, s_moved, s_cost = exchange(cluster, _split(data, src), n, kind=kind)
    pooled, p_moved, p_cost = exchange(
        cluster, _split(data, src), n, kind=kind, pool=_shared_pool()
    )
    assert repr(serial) == repr(pooled)
    assert (s_moved, s_cost) == (p_moved, p_cost)
