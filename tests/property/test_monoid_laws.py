"""Property-based verification of the monoid laws (§4.3).

The paper's central formal claim is that its cleaning building blocks are
monoids: associative merges with an identity, so that any parallel
partitioning + merge order computes the same result.  Hypothesis hunts for
counterexamples on every monoid we define.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monoid import (
    AllMonoid,
    AnyMonoid,
    AvgMonoid,
    BagMonoid,
    CountMonoid,
    GroupMonoid,
    KMeansAssignMonoid,
    ListMonoid,
    MaxMonoid,
    MinMonoid,
    SetMonoid,
    SumMonoid,
    TokenFilterMonoid,
)

words = st.text(alphabet="abcdefgh", min_size=0, max_size=8)
numbers = st.integers(min_value=-1000, max_value=1000)


def canon_group(value):
    """Canonical form of group-monoid carriers for comparison."""
    return {k: sorted(v) if isinstance(v, list) else v for k, v in value.items()}


@given(st.lists(numbers, min_size=3, max_size=3))
def test_sum_associative(xs):
    m = SumMonoid()
    a, b, c = (m.unit(x) for x in xs)
    assert m.merge(m.merge(a, b), c) == m.merge(a, m.merge(b, c))


@given(numbers)
def test_sum_identity(x):
    m = SumMonoid()
    assert m.merge(m.zero(), m.unit(x)) == m.unit(x)
    assert m.merge(m.unit(x), m.zero()) == m.unit(x)


@given(st.lists(numbers, min_size=0, max_size=20))
def test_count_equals_len(xs):
    assert CountMonoid().fold(xs) == len(xs)


@given(st.lists(numbers, min_size=1, max_size=20))
def test_max_min_match_builtins(xs):
    assert MaxMonoid().fold(xs) == max(xs)
    assert MinMonoid().fold(xs) == min(xs)


@given(st.lists(st.booleans(), min_size=0, max_size=10))
def test_all_any_match_builtins(bs):
    assert AllMonoid().fold(bs) == all(bs)
    assert AnyMonoid().fold(bs) == any(bs)


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e6, max_value=1e6),
                min_size=1, max_size=30))
def test_avg_split_merge_equals_whole(xs):
    # Folding two halves then merging must equal folding everything: this is
    # exactly the map-side-combine correctness CleanDB's aggregation relies on.
    m = AvgMonoid()
    mid = len(xs) // 2
    merged = m.merge(m.fold(xs[:mid]), m.fold(xs[mid:]))
    whole = m.fold(xs)
    assert merged[1] == whole[1]
    assert abs(merged[0] - whole[0]) < 1e-6


@given(st.lists(numbers, max_size=15), st.lists(numbers, max_size=15))
def test_list_concat_order(xs, ys):
    m = ListMonoid()
    assert m.merge(m.fold(xs), m.fold(ys)) == xs + ys


@given(st.lists(words, max_size=15))
def test_set_fold_equals_builtin_set(ws):
    assert SetMonoid().fold(ws) == frozenset(ws)


@given(st.lists(words, min_size=3, max_size=3))
def test_bag_associative_up_to_multiset(ws):
    m = BagMonoid()
    a, b, c = (m.unit(w) for w in ws)
    left = m.merge(m.merge(a, b), c)
    right = m.merge(a, m.merge(b, c))
    assert sorted(left) == sorted(right)


@given(st.lists(words, min_size=3, max_size=3))
def test_token_filter_associative(ws):
    m = TokenFilterMonoid(q=2)
    a, b, c = (m.unit(w) for w in ws)
    left = m.merge(m.merge(a, b), c)
    right = m.merge(a, m.merge(b, c))
    assert left == right


@given(st.lists(words, min_size=1, max_size=10))
def test_token_filter_covers_every_word(ws):
    merged = TokenFilterMonoid(q=2).fold(ws)
    covered = set()
    for group in merged.values():
        covered |= set(group)
    assert covered == set(ws)


@settings(max_examples=50)
@given(st.lists(words.filter(bool), min_size=3, max_size=3))
def test_kmeans_assign_associative(ws):
    m = KMeansAssignMonoid(centers=["abcd", "efgh"], delta=0.1)
    a, b, c = (m.unit(w) for w in ws)
    assert m.merge(m.merge(a, b), c) == m.merge(a, m.merge(b, c))


@given(st.lists(st.tuples(st.integers(0, 5), numbers), min_size=0, max_size=30))
def test_group_monoid_matches_dict_grouping(pairs):
    m = GroupMonoid(key_func=lambda kv: kv[0], value_func=lambda kv: kv[1])
    folded = m.fold(pairs)
    expected: dict = {}
    for k, v in pairs:
        expected.setdefault(k, []).append(v)
    assert canon_group(folded) == canon_group(expected)


@given(st.lists(st.tuples(st.integers(0, 5), numbers), min_size=2, max_size=30))
def test_group_monoid_split_invariance(pairs):
    # Any split point gives the same merged grouping — the parallelism claim.
    m = GroupMonoid(key_func=lambda kv: kv[0], value_func=lambda kv: kv[1])
    whole = m.fold(pairs)
    for cut in (1, len(pairs) // 2, len(pairs) - 1):
        merged = m.merge(m.fold(pairs[:cut]), m.fold(pairs[cut:]))
        assert canon_group(merged) == canon_group(whole)
