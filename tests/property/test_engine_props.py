"""Property-based tests for the engine: partition-invariance of results.

A scale-out engine's defining invariant is that *how* data is partitioned
never changes *what* is computed — only the cost.  These tests vary the
partition count and shuffle strategy and require identical answers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Cluster

pairs = st.lists(
    st.tuples(st.integers(0, 8), st.integers(-50, 50)), min_size=0, max_size=60
)


@settings(max_examples=40)
@given(pairs, st.integers(min_value=1, max_value=7))
def test_group_by_key_partition_invariance(data, parts):
    c = Cluster(num_nodes=3)
    grouped = dict(
        c.parallelize(data, num_partitions=parts).group_by_key().collect()
    )
    expected: dict = {}
    for k, v in data:
        expected.setdefault(k, []).append(v)
    assert {k: sorted(v) for k, v in grouped.items()} == {
        k: sorted(v) for k, v in expected.items()
    }


@settings(max_examples=40)
@given(pairs, st.sampled_from(["sort", "hash"]))
def test_shuffle_strategy_does_not_change_grouping(data, kind):
    c = Cluster(num_nodes=4)
    grouped = dict(
        c.parallelize(data).group_by_key(shuffle_kind=kind).collect()
    )
    expected: dict = {}
    for k, v in data:
        expected.setdefault(k, []).append(v)
    assert {k: sorted(v) for k, v in grouped.items()} == {
        k: sorted(v) for k, v in expected.items()
    }


@settings(max_examples=40)
@given(pairs)
def test_aggregate_by_key_equals_group_then_reduce(data):
    c = Cluster(num_nodes=4)
    agg = dict(
        c.parallelize(data)
        .aggregate_by_key(lambda: 0, lambda a, v: a + v, lambda a, b: a + b)
        .collect()
    )
    expected: dict = {}
    for k, v in data:
        expected[k] = expected.get(k, 0) + v
    assert agg == expected


@settings(max_examples=30)
@given(st.lists(st.integers(-100, 100), max_size=50), st.integers(1, 6))
def test_map_filter_partition_invariance(xs, parts):
    c = Cluster(num_nodes=2)
    out = (
        c.parallelize(xs, num_partitions=parts)
        .map(lambda x: x * 3)
        .filter(lambda x: x % 2 == 0)
        .collect()
    )
    assert sorted(out) == sorted(x * 3 for x in xs if (x * 3) % 2 == 0)


@settings(max_examples=30)
@given(st.lists(st.integers(0, 20), max_size=40))
def test_distinct_matches_set(xs):
    c = Cluster(num_nodes=3)
    assert sorted(c.parallelize(xs).distinct().collect()) == sorted(set(xs))


@settings(max_examples=30)
@given(
    st.lists(st.tuples(st.integers(0, 5), st.text("ab", max_size=3)), max_size=30),
    st.lists(st.tuples(st.integers(0, 5), st.text("cd", max_size=3)), max_size=30),
)
def test_join_matches_nested_loop(left, right):
    c = Cluster(num_nodes=3)
    joined = c.parallelize(left).join(c.parallelize(right)).collect()
    expected = [
        (kl, (vl, vr)) for kl, vl in left for kr, vr in right if kl == kr
    ]
    assert sorted(joined, key=repr) == sorted(expected, key=repr)


@settings(max_examples=20)
@given(st.lists(st.integers(0, 30), max_size=40), st.integers(1, 8))
def test_simulated_time_monotone_nonnegative(xs, parts):
    c = Cluster(num_nodes=4)
    ds = c.parallelize(xs, num_partitions=parts)
    t0 = c.metrics.simulated_time
    ds.map(lambda x: x + 1).filter(lambda x: x > 0).collect()
    assert c.metrics.simulated_time >= t0 >= 0.0
