"""Unit tests for the blocking strategies."""

import pytest

from repro.cleaning import key_blocks, kmeans_blocks, length_blocks, make_blocks, token_blocks
from repro.cleaning.tokenize import normalize_term, qgrams, words
from repro.engine import Cluster


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


WORDS = [{"w": w} for w in ["smith", "smyth", "jones", "joned", "brown"]]


class TestQgrams:
    def test_basic(self):
        assert qgrams("abcd", 2) == ["ab", "bc", "cd"]

    def test_short_string_returns_itself(self):
        assert qgrams("ab", 3) == ["ab"]

    def test_empty(self):
        assert qgrams("", 3) == []

    def test_padding_adds_edge_tokens(self):
        padded = qgrams("ab", 3, pad=True)
        assert "##a" in padded and "b##" in padded

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_words_and_normalize(self):
        assert words("Hello World") == ["hello", "world"]
        assert normalize_term("  MiXeD ") == "mixed"


class TestKeyBlocks:
    def test_groups_by_exact_key(self, cluster):
        data = [{"k": "a"}, {"k": "a"}, {"k": "b"}]
        blocks = dict(key_blocks(cluster.parallelize(data), lambda r: r["k"]).collect())
        assert len(blocks["a"]) == 2 and len(blocks["b"]) == 1


class TestTokenBlocks:
    def test_record_in_every_token_group(self, cluster):
        ds = cluster.parallelize([{"w": "abc"}])
        blocks = dict(token_blocks(ds, lambda r: r["w"], q=2).collect())
        assert set(blocks) == {"ab", "bc"}

    def test_similar_words_share_group(self, cluster):
        ds = cluster.parallelize(WORDS)
        blocks = token_blocks(ds, lambda r: r["w"], q=2).collect()
        shared = [
            {r["w"] for r in members}
            for _, members in blocks
            if len(members) > 1
        ]
        assert any({"smith", "smyth"} <= s for s in shared)

    def test_larger_q_makes_more_selective_groups(self, cluster):
        ds2 = cluster.parallelize(WORDS)
        ds4 = cluster.parallelize(WORDS)
        blocks2 = token_blocks(ds2, lambda r: r["w"], q=2).collect()
        blocks4 = token_blocks(ds4, lambda r: r["w"], q=4).collect()
        avg2 = sum(len(m) for _, m in blocks2) / len(blocks2)
        avg4 = sum(len(m) for _, m in blocks4) / len(blocks4)
        assert avg4 <= avg2


class TestKMeansBlocks:
    def test_blocks_keyed_by_center_index(self, cluster):
        ds = cluster.parallelize(WORDS)
        blocks = kmeans_blocks(
            ds, lambda r: r["w"], centers=["smith", "jones"]
        ).collect()
        keys = {k for k, _ in blocks}
        assert keys <= {0, 1}

    def test_all_records_covered(self, cluster):
        ds = cluster.parallelize(WORDS)
        blocks = kmeans_blocks(ds, lambda r: r["w"], k=2, centers=["smith", "jones"]).collect()
        covered = {r["w"] for _, members in blocks for r in members}
        assert covered == {r["w"] for r in WORDS}


class TestLengthBlocks:
    def test_bands_by_length(self, cluster):
        ds = cluster.parallelize([{"w": "ab"}, {"w": "abc"}, {"w": "abcdefgh"}])
        blocks = dict(length_blocks(ds, lambda r: r["w"], width=4).collect())
        assert set(blocks) == {0, 2}

    def test_invalid_width(self, cluster):
        with pytest.raises(ValueError):
            length_blocks(cluster.parallelize(WORDS), lambda r: r["w"], width=0)


class TestMakeBlocks:
    def test_dispatch(self, cluster):
        ds = cluster.parallelize(WORDS)
        blocks = make_blocks("token_filtering", ds, lambda r: r["w"], q=2)
        assert blocks.count() > 0

    def test_unknown_op(self, cluster):
        with pytest.raises(ValueError):
            make_blocks("minhash", cluster.parallelize(WORDS), lambda r: r["w"])

    @pytest.mark.parametrize("grouping", ["aggregate", "sort", "hash"])
    def test_grouping_strategies_same_content(self, cluster, grouping):
        ds = cluster.parallelize(WORDS)
        blocks = token_blocks(ds, lambda r: r["w"], q=2, grouping=grouping).collect()
        merged: dict = {}
        for k, members in blocks:
            merged.setdefault(k, set()).update(r["w"] for r in members)
        assert merged["sm"] == {"smith", "smyth"}
