"""Unit tests for syntactic & semantic transformations (Table 4 operations)."""

import pytest

from repro.cleaning import (
    FillMissing,
    SemanticMap,
    SplitAttribute,
    SplitDate,
    TransformPipeline,
    project_all,
)
from repro.engine import Cluster


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


class TestSplitDate:
    def test_splits_iso_date(self, cluster):
        ds = cluster.parallelize([{"receiptdate": "1997-03-28"}])
        out = TransformPipeline([SplitDate("receiptdate")]).run_fused(ds).collect()
        assert out[0]["year"] == "1997"
        assert out[0]["month"] == "03"
        assert out[0]["day"] == "28"

    def test_malformed_date_left_alone(self, cluster):
        ds = cluster.parallelize([{"receiptdate": "not-a-date-at-all-x"}])
        out = TransformPipeline([SplitDate("receiptdate")]).run_fused(ds).collect()
        assert "year" not in out[0] or out[0].get("year") != "1997"

    def test_missing_attr_no_crash(self, cluster):
        ds = cluster.parallelize([{"other": 1}])
        out = TransformPipeline([SplitDate("receiptdate")]).run_fused(ds).collect()
        assert out[0]["other"] == 1


class TestFillMissing:
    def test_fills_none_with_average(self, cluster):
        ds = cluster.parallelize(
            [{"quantity": 10}, {"quantity": None}, {"quantity": 20}]
        )
        out = TransformPipeline([FillMissing("quantity")]).run_fused(ds).collect()
        values = sorted(r["quantity"] for r in out)
        assert values == [10, 15.0, 20]

    def test_empty_string_counts_as_missing(self, cluster):
        ds = cluster.parallelize([{"quantity": ""}, {"quantity": 4}])
        out = TransformPipeline([FillMissing("quantity")]).run_fused(ds).collect()
        assert sorted(r["quantity"] for r in out) == [4, 4.0]

    def test_all_missing_fills_zero(self, cluster):
        ds = cluster.parallelize([{"quantity": None}])
        out = TransformPipeline([FillMissing("quantity")]).run_fused(ds).collect()
        assert out[0]["quantity"] == 0.0


class TestSplitAttribute:
    def test_generic_split(self, cluster):
        ds = cluster.parallelize([{"full": "a|b|c"}])
        step = SplitAttribute("full", "|", ["p", "q", "r"])
        out = TransformPipeline([step]).run_fused(ds).collect()
        assert (out[0]["p"], out[0]["q"], out[0]["r"]) == ("a", "b", "c")


class TestSemanticMap:
    def test_maps_through_auxiliary_table(self, cluster):
        ds = cluster.parallelize([{"airport": "GVA"}, {"airport": "ZRH"}])
        step = SemanticMap("airport", {"GVA": "geneva", "ZRH": "zurich"}, target="city")
        out = TransformPipeline([step]).run_fused(ds).collect()
        assert {r["city"] for r in out} == {"geneva", "zurich"}

    def test_unmapped_values_reported_as_misses(self, cluster):
        step = SemanticMap("airport", {"GVA": "geneva"})
        ds = cluster.parallelize([{"airport": "XXX"}])
        TransformPipeline([step]).run_fused(ds).collect()
        assert step.misses == ["XXX"]


class TestPipelineFusion:
    def test_fused_equals_separate(self, cluster):
        records = [
            {"receiptdate": "1995-01-02", "quantity": None},
            {"receiptdate": "1996-05-06", "quantity": 8},
        ]
        steps = [SplitDate("receiptdate"), FillMissing("quantity")]
        sep = TransformPipeline(steps).run_separate(
            cluster.parallelize([dict(r) for r in records])
        ).collect()
        fused = TransformPipeline(steps).run_fused(
            cluster.parallelize([dict(r) for r in records])
        ).collect()
        assert sorted(sep, key=str) == sorted(fused, key=str)

    def test_fused_costs_less_than_separate(self):
        records = [{"receiptdate": "1995-01-02", "quantity": i % 7 or None} for i in range(200)]
        steps = [SplitDate("receiptdate"), FillMissing("quantity")]
        c_sep = Cluster(num_nodes=4)
        TransformPipeline(steps).run_separate(c_sep.parallelize(records)).collect()
        c_fused = Cluster(num_nodes=4)
        TransformPipeline(steps).run_fused(c_fused.parallelize(records)).collect()
        assert c_fused.metrics.simulated_time < c_sep.metrics.simulated_time

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            TransformPipeline([])


class TestProjectAll:
    def test_identity_content(self, cluster):
        records = [{"a": 1}, {"a": 2}]
        out = project_all(cluster.parallelize(records)).collect()
        assert sorted(out, key=str) == sorted(records, key=str)
