"""Unit tests for denial-constraint repair by relaxation."""

import pytest

from repro.cleaning.dc_kernel import (
    DenialConstraint,
    SingleFilter,
    TuplePredicate,
    find_violations,
)
from repro.cleaning.repair import repair_dc_by_relaxation

PSI = DenialConstraint(
    predicates=(
        TuplePredicate("price", "<", "price"),
        TuplePredicate("discount", ">", "discount"),
    ),
    name="psi",
)


class TestRepairDCByRelaxation:
    def test_simple_violation_repaired_by_nearest_value(self):
        records = [
            {"price": 10.0, "discount": 0.05},
            {"price": 20.0, "discount": 0.01},
        ]
        repaired, report = repair_dc_by_relaxation(records, PSI)
        assert report.violations_found == 1
        assert report.clean and report.residual_violations == 0
        assert find_violations(repaired, PSI) == []
        # Exactly one cell moved, and it moved to the *nearest* value that
        # falsifies its predicate (not to null, not far away).
        assert report.cells_changed == 1
        assert report.cells_nulled == 0
        changed = [
            (i, k)
            for i, (a, b) in enumerate(zip(records, repaired))
            for k in a
            if a[k] != b[k]
        ]
        assert len(changed) == 1
        i, attr = changed[0]
        if attr == "price":
            # Raising t1.price to the partner's price falsifies ``<``.
            assert repaired[i]["price"] == 20.0
        else:
            assert repaired[i][attr] in (0.01, 0.05)

    def test_input_records_not_mutated(self):
        records = [
            {"price": 10.0, "discount": 0.05},
            {"price": 20.0, "discount": 0.01},
        ]
        snapshot = [dict(r) for r in records]
        repair_dc_by_relaxation(records, PSI)
        assert records == snapshot

    def test_hub_violator_repaired_with_one_cell(self):
        # One cheap high-discount row violates against many others: the
        # greedy vertex cover should pick one of its cells, not dozens.
        records = [{"price": 1.0, "discount": 0.99}] + [
            {"price": float(10 + i), "discount": 0.0} for i in range(20)
        ]
        repaired, report = repair_dc_by_relaxation(records, PSI)
        assert report.violations_found == 20
        assert report.clean
        assert report.cover_size == 1
        assert report.cells_changed + report.cells_nulled == 1

    def test_left_filter_constraint(self):
        capped = DenialConstraint(
            predicates=PSI.predicates,
            left_filters=(SingleFilter("price", "<", 15.0),),
            name="psi_capped",
        )
        records = [
            {"price": 10.0, "discount": 0.05},
            {"price": 20.0, "discount": 0.01},
            {"price": 30.0, "discount": 0.10},  # above the cap: never t1
        ]
        repaired, report = repair_dc_by_relaxation(records, capped)
        assert report.clean
        assert find_violations(repaired, capped) == []

    def test_symmetric_constraint_with_equalities(self):
        constraint = DenialConstraint(
            predicates=(
                TuplePredicate("zip", "==", "zip"),
                TuplePredicate("city", "!=", "city"),
            ),
            name="zipcity",
        )
        records = [
            {"zip": 10, "city": "a"},
            {"zip": 10, "city": "b"},
            {"zip": 10, "city": "a"},
        ]
        repaired, report = repair_dc_by_relaxation(records, constraint)
        assert report.clean
        assert find_violations(repaired, constraint) == []

    def test_null_backstop_with_zero_rounds(self):
        # max_rounds=0 skips value relaxation entirely: the final round
        # nulls the cover, which can never create new violations.
        records = [
            {"price": 10.0, "discount": 0.05},
            {"price": 20.0, "discount": 0.01},
        ]
        repaired, report = repair_dc_by_relaxation(records, PSI, max_rounds=0)
        assert report.clean
        assert report.cells_changed == 0
        assert report.cells_nulled >= 1
        assert find_violations(repaired, PSI) == []

    def test_clean_data_is_untouched(self):
        records = [
            {"price": 10.0, "discount": 0.01},
            {"price": 20.0, "discount": 0.05},
        ]
        repaired, report = repair_dc_by_relaxation(records, PSI)
        assert repaired == records
        assert report.violations_found == 0
        assert report.rounds == 0
        assert report.cover_size == 0

    def test_rid_records_supported(self):
        records = [
            {"price": 10.0, "discount": 0.05, "_rid": 100},
            {"price": 20.0, "discount": 0.01, "_rid": 200},
        ]
        repaired, report = repair_dc_by_relaxation(records, PSI)
        assert report.clean
        # rids survive the repair untouched.
        assert [r["_rid"] for r in repaired] == [100, 200]

    def test_repair_terminates_on_cascading_violations(self):
        # A chain where fixing one pair can create the next: the round
        # loop plus the null backstop must always reach zero residuals.
        records = [
            {"price": float(i), "discount": round(0.1 - i * 0.01, 3)}
            for i in range(10)
        ]
        repaired, report = repair_dc_by_relaxation(records, PSI, max_rounds=2)
        assert report.clean
        assert find_violations(repaired, PSI) == []


class TestCleanDBRepairSurface:
    def test_facade_repair_replaces_table(self):
        from repro import CleanDB

        db = CleanDB(num_nodes=4)
        db.register_table(
            "lineitem",
            [
                {"price": 10.0, "discount": 0.05},
                {"price": 20.0, "discount": 0.01},
            ],
        )
        assert len(db.check_dc("lineitem", PSI)) == 1
        report = db.repair_dc("lineitem", PSI)
        assert report.clean
        assert db.check_dc("lineitem", PSI) == []

    def test_facade_accepts_rule_strings(self):
        from repro import CleanDB

        db = CleanDB(num_nodes=4)
        db.register_table(
            "lineitem",
            [
                {"price": 10.0, "discount": 0.05},
                {"price": 20.0, "discount": 0.01},
            ],
        )
        rule = "t1.price < t2.price and t1.discount > t2.discount"
        assert len(db.check_dc("lineitem", rule)) == 1

    @pytest.mark.parametrize("execution", ["row", "vectorized"])
    def test_system_repair_reports(self, execution):
        from repro.baselines import CleanDBSystem

        records = [
            {"price": 10.0, "discount": 0.05},
            {"price": 20.0, "discount": 0.01},
        ]
        result = CleanDBSystem(num_nodes=4, execution=execution).repair_dc(
            records, PSI
        )
        assert result.ok
        repair = result.extra["repair"]
        assert repair["violations_found"] == 1
        assert repair["residual_violations"] == 0
