"""Unit tests for domain/range syntactic checks."""

import pytest

from repro.cleaning.domain import (
    DomainViolation,
    InRange,
    InSet,
    Matches,
    NotNull,
    Satisfies,
    check_domains,
    violation_summary,
)
from repro.engine import Cluster


@pytest.fixture
def cluster():
    return Cluster(num_nodes=2)


RECORDS = [
    {"status": "active", "age": 30, "email": "a@x.org", "id": 1},
    {"status": "zombie", "age": 30, "email": "b@x.org", "id": 2},   # bad status
    {"status": "active", "age": -4, "email": "c@x.org", "id": 3},   # bad age
    {"status": "active", "age": 30, "email": "not-an-email", "id": 4},
    {"status": "active", "age": None, "email": None, "id": 5},
]


class TestRules:
    def test_in_set(self):
        rule = InSet("status", frozenset({"active", "inactive"}))
        assert rule.ok("active")
        assert not rule.ok("zombie")
        assert not rule.ok(None)

    def test_in_set_allow_null(self):
        rule = InSet("status", frozenset({"a"}), allow_null=True)
        assert rule.ok(None)

    def test_in_range(self):
        rule = InRange("age", 0, 120)
        assert rule.ok(0) and rule.ok(120)
        assert not rule.ok(-1) and not rule.ok(121)

    def test_in_range_rejects_non_numeric(self):
        rule = InRange("age", 0, 120)
        assert not rule.ok("thirty")
        assert not rule.ok(True)

    def test_matches(self):
        rule = Matches("email", r"[^@]+@[^@]+\.[a-z]+")
        assert rule.ok("a@x.org")
        assert not rule.ok("nope")

    def test_not_null(self):
        rule = NotNull("email")
        assert rule.ok("x") and not rule.ok(None) and not rule.ok("")

    def test_satisfies(self):
        rule = Satisfies("id", lambda v: isinstance(v, int) and v > 0, "positive")
        assert rule.ok(3) and not rule.ok(0)
        assert rule.name == "positive(id)"


class TestCheckDomains:
    def rules(self):
        return [
            InSet("status", frozenset({"active", "inactive"})),
            InRange("age", 0, 120, allow_null=True),
            Matches("email", r"[^@]+@[^@]+\.[a-z]+", allow_null=True),
        ]

    def test_single_pass_catches_everything(self, cluster):
        ds = cluster.parallelize(RECORDS)
        violations = check_domains(ds, self.rules()).collect()
        by_rule = violation_summary(violations)
        assert by_rule == {
            "in_set(status)": 1,
            "in_range(age)": 1,
            "matches(email)": 1,
        }

    def test_violation_carries_record_and_value(self, cluster):
        ds = cluster.parallelize(RECORDS)
        violations = check_domains(ds, [InRange("age", 0, 120)]).collect()
        bad_age = [v for v in violations if v.value == -4]
        assert bad_age and bad_age[0].record["id"] == 3

    def test_record_can_violate_multiple_rules(self, cluster):
        ds = cluster.parallelize([{"status": "zombie", "age": -1}])
        violations = check_domains(
            ds, [InSet("status", frozenset({"active"})), InRange("age", 0, 100)]
        ).collect()
        assert len(violations) == 2

    def test_one_pass_cost(self, cluster):
        ds = cluster.parallelize(RECORDS)
        ops_before = len(cluster.metrics.ops)
        check_domains(ds, self.rules())
        # all three rules in exactly one additional engine op
        assert len(cluster.metrics.ops) == ops_before + 1

    def test_empty_rules_rejected(self, cluster):
        with pytest.raises(ValueError):
            check_domains(cluster.parallelize(RECORDS), [])

    def test_clean_data_no_violations(self, cluster):
        clean = [{"status": "active", "age": 1, "email": "a@b.co"}]
        violations = check_domains(cluster.parallelize(clean), self.rules()).collect()
        assert violations == []
