"""Unit tests for similarity metrics."""

import pytest

from repro.cleaning import (
    euclidean_similarity,
    get_metric,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    record_similarity,
    register_metric,
    similar,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0), ("a", "", 1), ("", "abc", 3), ("abc", "abc", 0),
            ("kitten", "sitting", 3), ("flaw", "lawn", 2), ("abc", "acb", 2),
        ],
    )
    def test_distances(self, a, b, d):
        assert levenshtein_distance(a, b) == d

    def test_symmetric(self):
        assert levenshtein_distance("abcd", "dcba") == levenshtein_distance("dcba", "abcd")

    def test_band_early_exit_returns_over_budget(self):
        assert levenshtein_distance("aaaa", "zzzz", max_distance=1) > 1

    def test_band_exact_when_within(self):
        assert levenshtein_distance("kitten", "sitting", max_distance=5) == 3

    def test_band_length_difference_shortcut(self):
        assert levenshtein_distance("a", "abcdefgh", max_distance=2) == 3

    def test_similarity_range(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert levenshtein_similarity("", "") == 1.0

    def test_similarity_partial(self):
        assert levenshtein_similarity("abcd", "abcx") == pytest.approx(0.75)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity("token", "token") == 1.0

    def test_disjoint(self):
        assert jaccard_similarity("aaaa", "zzzz") == 0.0

    def test_empty_strings(self):
        assert jaccard_similarity("", "") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_empty(self):
        assert jaro_similarity("", "x") == 0.0

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("prefixed", "prefixes")
        boosted = jaro_winkler_similarity("prefixed", "prefixes")
        assert boosted > plain


class TestEuclidean:
    def test_zero_distance(self):
        assert euclidean_similarity([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_monotone_in_distance(self):
        near = euclidean_similarity([0.0], [1.0])
        far = euclidean_similarity([0.0], [10.0])
        assert near > far

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_similarity([1.0], [1.0, 2.0])


class TestRegistry:
    def test_ld_alias(self):
        assert get_metric("LD") is get_metric("levenshtein")

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            get_metric("cosine")

    def test_register_extension(self):
        register_metric("always_one", lambda a, b: 1.0)
        assert get_metric("always_one")("x", "y") == 1.0


class TestSimilarPredicate:
    def test_threshold_pass(self):
        assert similar("LD", "smith", "smyth", 0.7)

    def test_threshold_fail(self):
        assert not similar("LD", "smith", "jones", 0.7)

    def test_empty_strings_similar(self):
        assert similar("LD", "", "", 0.9)

    def test_matches_unbanded_similarity(self):
        # The banded fast path must agree with the plain similarity check.
        pairs = [("abcdef", "abcxef"), ("a", "ab"), ("same", "same"), ("ab", "ba")]
        for a, b in pairs:
            for theta in (0.3, 0.5, 0.8):
                assert similar("LD", a, b, theta) == (
                    levenshtein_similarity(a, b) >= theta
                )


class TestRecordSimilarity:
    def test_average_over_attributes(self):
        left = {"a": "same", "b": "xxxx"}
        right = {"a": "same", "b": "yyyy"}
        # attribute sims: 1.0 and 0.0 -> mean 0.5
        assert record_similarity(left, right, ["a", "b"], "LD", 0.5)
        assert not record_similarity(left, right, ["a", "b"], "LD", 0.6)

    def test_missing_attrs_treated_as_empty(self):
        assert record_similarity({}, {}, ["a"], "LD", 0.9)

    def test_no_attributes_rejected(self):
        with pytest.raises(ValueError):
            record_similarity({}, {}, [], "LD", 0.5)
