"""Unit tests for term validation against a dictionary."""

import pytest

from repro.cleaning import NO_FILTERS, TermRepair, validate_terms
from repro.engine import Cluster

DICTIONARY = ["john smith", "mary jones", "peter brown", "alice cooper"]


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


class TestTokenFiltering:
    def test_misspelling_repaired(self, cluster):
        ds = cluster.parallelize(["jhon smith"])
        repairs = validate_terms(ds, DICTIONARY, op="token_filtering", theta=0.6, q=2).collect()
        assert len(repairs) == 1
        assert repairs[0].best == "john smith"

    def test_clean_terms_not_reported(self, cluster):
        ds = cluster.parallelize(["mary jones", "peter brown"])
        repairs = validate_terms(ds, DICTIONARY, theta=0.6).collect()
        assert repairs == []

    def test_unrelated_term_gets_no_suggestion(self, cluster):
        ds = cluster.parallelize(["zzzzzz qqqqq"])
        repairs = validate_terms(ds, DICTIONARY, theta=0.8).collect()
        assert repairs == []

    def test_suggestions_sorted_by_similarity(self, cluster):
        ds = cluster.parallelize(["mary jonez"])
        [repair] = validate_terms(ds, DICTIONARY, theta=0.5, q=2).collect()
        assert repair.suggestions[0] == "mary jones"

    def test_duplicate_dirty_terms_validated_once(self, cluster):
        ds = cluster.parallelize(["jhon smith"] * 10)
        repairs = validate_terms(ds, DICTIONARY, theta=0.6, q=2).collect()
        assert len(repairs) == 1

    def test_phase_metrics_recorded(self, cluster):
        ds = cluster.parallelize(["jhon smith"])
        validate_terms(ds, DICTIONARY, theta=0.6).collect()
        assert cluster.metrics.phase_time("grouping") > 0
        assert cluster.metrics.phase_time("similarity") >= 0


class TestKMeans:
    def test_misspelling_repaired(self, cluster):
        ds = cluster.parallelize(["jhon smith"])
        repairs = validate_terms(
            ds, DICTIONARY, op="kmeans", k=2, theta=0.6, delta=0.3
        ).collect()
        assert any(r.best == "john smith" for r in repairs)

    def test_more_centers_fewer_checks(self):
        terms = [f"term {i}" for i in range(50)]
        dictionary = [f"term {i}" for i in range(0, 100, 2)]
        comparisons = {}
        for k in (2, 10):
            c = Cluster(num_nodes=4)
            ds = c.parallelize(terms)
            validate_terms(ds, dictionary, op="kmeans", k=k, theta=0.9).collect()
            comparisons[k] = c.metrics.comparisons
        assert comparisons[10] <= comparisons[2]

    def test_unknown_op_rejected(self, cluster):
        with pytest.raises(ValueError):
            validate_terms(cluster.parallelize(["x"]), DICTIONARY, op="lsh")


class TestBandedVerification:
    """The kernel's banding must never change which repairs are produced —
    including pairs whose similarity sits *exactly* on the threshold."""

    def _run(self, cluster, terms, dictionary, theta, filters, q=2):
        ds = cluster.parallelize(terms)
        repairs = validate_terms(
            ds, dictionary, theta=theta, q=q, filters=filters
        ).collect()
        return sorted((r.term, r.suggestions) for r in repairs)

    def test_banded_agrees_with_unbanded_at_threshold_boundary(self):
        # "abxd" vs "abcd": distance 1 over length 4 -> similarity exactly
        # 0.75, right on theta; "abzz" -> 0.5, right below.
        dictionary = ["abcd"]
        terms = ["abxd", "abzz"]
        banded = self._run(Cluster(4), terms, dictionary, 0.75, None)
        naive = self._run(Cluster(4), terms, dictionary, 0.75, NO_FILTERS)
        assert banded == naive
        assert banded == [("abxd", ("abcd",))]

    @pytest.mark.parametrize("theta", [0.5, 0.6, 0.75, 0.8, 0.9])
    def test_banded_agrees_with_unbanded_everywhere(self, theta):
        terms = ["jhon smith", "mary jonez", "peter brwn", "zzzz", "alice"]
        banded = self._run(Cluster(4), terms, DICTIONARY, theta, None)
        naive = self._run(Cluster(4), terms, DICTIONARY, theta, NO_FILTERS)
        assert banded == naive

    def test_filters_reduce_verified_but_not_candidates(self):
        results = {}
        for label, filters in (("on", None), ("off", NO_FILTERS)):
            c = Cluster(4)
            self._run(
                c, ["jhon smith", "qqqq zzzz ffff"], DICTIONARY, 0.8, filters
            )
            results[label] = (c.metrics.comparisons, c.metrics.verified)
        assert results["on"][0] == results["off"][0]
        assert results["on"][1] < results["off"][1]
        assert results["off"][0] == results["off"][1]


class TestTermFunc:
    def test_record_term_extraction(self, cluster):
        ds = cluster.parallelize([{"author": "jhon smith"}])
        repairs = validate_terms(
            ds, DICTIONARY, term_func=lambda r: r["author"], theta=0.6, q=2
        ).collect()
        assert repairs and repairs[0].term == "jhon smith"


class TestTermRepair:
    def test_best_none_when_no_suggestions(self):
        assert TermRepair("x", ()).best is None

    def test_best_is_first(self):
        assert TermRepair("x", ("a", "b")).best == "a"
