"""Unit tests for the filtered similarity-join kernel."""

import pytest

from repro.cleaning.similarity import levenshtein_similarity
from repro.cleaning.simjoin import (
    DEFAULT_FILTERS,
    NO_FILTERS,
    FilterConfig,
    JoinStats,
    SimJoin,
    banded_ld_similarity,
    ld_upper_bound,
    resolve_filters,
    sorted_overlap,
)

WORDS = [
    "", "a", "alice", "alice smith", "alice smyth", "bob jones",
    "cleaning data at scale", "clean data at scale", "xylophone",
]


class TestFilterConfig:
    def test_defaults_enable_everything(self):
        cfg = FilterConfig()
        assert cfg.length_filter and cfg.count_filter and cfg.banding
        assert cfg.ownership and cfg.prunes

    def test_no_filters_disables_pruning(self):
        assert not NO_FILTERS.prunes
        assert not NO_FILTERS.ownership

    def test_resolve_none_means_defaults(self):
        assert resolve_filters(None) is DEFAULT_FILTERS
        custom = FilterConfig(banding=False)
        assert resolve_filters(custom) is custom


class TestSortedOverlap:
    def test_counts_bag_intersection(self):
        assert sorted_overlap(["a", "b", "b", "c"], ["b", "b", "b", "d"]) == 2
        assert sorted_overlap([], ["a"]) == 0
        assert sorted_overlap(["x"], ["x"]) == 1


class TestBounds:
    @pytest.mark.parametrize("a", WORDS)
    @pytest.mark.parametrize("b", WORDS)
    def test_upper_bound_is_sound(self, a, b):
        assert levenshtein_similarity(a, b) <= ld_upper_bound(a, b)

    @pytest.mark.parametrize("theta", [0.5, 0.6, 0.8, 0.9, 1.0])
    @pytest.mark.parametrize("a", WORDS)
    @pytest.mark.parametrize("b", WORDS)
    def test_banded_similarity_exact_or_below_theta(self, theta, a, b):
        exact = levenshtein_similarity(a, b)
        banded = banded_ld_similarity(a, b, theta)
        if banded is None:
            assert exact < theta
        else:
            assert banded == exact


def _join(attributes, theta, filters=None, metric="LD"):
    return SimJoin(attributes, metric=metric, theta=theta, filters=filters)


class TestVerify:
    @pytest.mark.parametrize("theta", [0.5, 0.75, 0.8, 1.0])
    def test_matches_naive_decision_everywhere(self, theta):
        filtered = _join(["x", "y"], theta)
        naive = _join(["x", "y"], theta, filters=NO_FILTERS)
        records = [
            {"x": a, "y": b} for a in WORDS for b in WORDS
        ]
        for i, left in enumerate(records):
            for right in records[i + 1:]:
                a1 = filtered.prepare(1, left)
                b1 = filtered.prepare(2, right)
                a2 = naive.prepare(1, left)
                b2 = naive.prepare(2, right)
                assert filtered.verify(a1, b1) == naive.verify(a2, b2)

    def test_boundary_pair_exactly_at_theta_passes(self):
        # distance 1 over length 4 -> similarity exactly 0.75.
        join = _join(["x"], 0.75)
        a = join.prepare(1, {"x": "abcd"})
        b = join.prepare(2, {"x": "abce"})
        assert join.verify(a, b)
        assert join.stats.verified == 1

    def test_filters_skip_the_metric(self):
        join = _join(["x"], 0.9)
        a = join.prepare(1, {"x": "alice smith"})
        b = join.prepare(2, {"x": "xyz"})
        assert not join.verify(a, b)
        assert join.stats.candidates == 1
        assert join.stats.verified == 0
        assert join.stats.metric_calls == 0

    def test_no_filters_verifies_every_candidate(self):
        join = _join(["x"], 0.9, filters=NO_FILTERS)
        a = join.prepare(1, {"x": "alice smith"})
        b = join.prepare(2, {"x": "xyz"})
        assert not join.verify(a, b)
        assert join.stats.candidates == join.stats.verified == 1
        assert join.stats.metric_calls == 1

    def test_non_ld_metric_runs_unfiltered(self):
        join = _join(["x"], 0.5, metric="jaccard")
        assert not join.bounded
        a = join.prepare(1, {"x": "abcdef"})
        b = join.prepare(2, {"x": "z"})
        join.verify(a, b)
        assert join.stats.verified == 1


class TestJoinMembers:
    def test_each_unordered_pair_once_and_rid_ordered(self):
        join = _join(["x"], 0.0, filters=NO_FILTERS)
        members = [join.prepare(rid, {"x": "same"}) for rid in (3, 1, 2)]
        pairs = list(join.join_members(members))
        assert [(a.rid, b.rid) for a, b in pairs] == [(1, 3), (2, 3), (1, 2)]
        assert join.stats.candidates == 3

    def test_equal_rids_are_skipped(self):
        join = _join(["x"], 0.0, filters=NO_FILTERS)
        members = [join.prepare(7, {"x": "same"}) for _ in range(2)]
        assert list(join.join_members(members)) == []
        assert join.stats.candidates == 0


class TestOwnership:
    def _parts(self, join):
        """Two overlapping token-style blocks sharing the same two records."""
        a = join.prepare(0, {"x": "alice"})
        b = join.prepare(1, {"x": "alice"})
        c = join.prepare(2, {"x": "alicf"})
        # Block "ali" holds everyone; block "lic" holds a and b again.
        return [[("ali", [a, b, c])], [("lic", [a, b])]]

    def test_pair_verified_exactly_once_across_blocks(self):
        join = _join(["x"], 0.6)
        out_parts, work = join.join_grouped_partitions(self._parts(join))
        found = [(a.rid, b.rid) for part in out_parts for a, b in part]
        # (0, 1) shares both blocks but is charged once; candidates are the
        # three unique pairs.
        assert sorted(found) == [(0, 1), (0, 2), (1, 2)]
        assert join.stats.candidates == 3
        assert len(work) == 2

    def test_owner_is_least_frequent_block(self):
        join = _join(["x"], 0.6)
        out_parts, _ = join.join_grouped_partitions(self._parts(join))
        # Pair (0, 1) must be verified in the smaller "lic" block (partition
        # 1), not in the first block encountered.
        assert (0, 1) in [(a.rid, b.rid) for a, b in out_parts[1]]
        assert (0, 1) not in [(a.rid, b.rid) for a, b in out_parts[0]]

    def test_ownership_off_uses_global_seen(self):
        join = _join(["x"], 0.6, filters=NO_FILTERS)
        out_parts, _ = join.join_grouped_partitions(self._parts(join))
        found = [(a.rid, b.rid) for part in out_parts for a, b in part]
        assert sorted(found) == [(0, 1), (0, 2), (1, 2)]
        assert join.stats.candidates == 3
        # With the naive configuration the pair lands in the first block.
        assert (0, 1) in [(a.rid, b.rid) for a, b in out_parts[0]]


class TestJoinStats:
    def test_merge_adds_counters(self):
        left = JoinStats(candidates=2, verified=1, metric_calls=3, pairs=1, work=0.5)
        right = JoinStats(candidates=1, verified=1, metric_calls=1, pairs=0, work=0.25)
        left.merge(right)
        assert (left.candidates, left.verified, left.metric_calls, left.pairs) == (
            3, 2, 4, 1,
        )
        assert left.work == pytest.approx(0.75)
