"""Unit tests for clustering primitives."""

import pytest

from repro.cleaning import (
    assign_to_centers,
    fixed_step_centers,
    hierarchical_cluster,
    multi_pass_kmeans,
    reservoir_sample,
    single_pass_kmeans,
)


class TestReservoirSample:
    def test_sample_size(self):
        assert len(reservoir_sample(list(range(100)), 10)) == 10

    def test_small_input_returned_whole(self):
        assert reservoir_sample([1, 2], 10) == [1, 2]

    def test_deterministic_for_seed(self):
        a = reservoir_sample(list(range(1000)), 5, seed=3)
        b = reservoir_sample(list(range(1000)), 5, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = reservoir_sample(list(range(1000)), 5, seed=1)
        b = reservoir_sample(list(range(1000)), 5, seed=2)
        assert a != b

    def test_roughly_uniform(self):
        # Each element should be chosen with probability k/n.
        counts = {i: 0 for i in range(20)}
        for seed in range(300):
            for x in reservoir_sample(list(range(20)), 5, seed=seed):
                counts[x] += 1
        expected = 300 * 5 / 20
        assert all(expected * 0.5 < c < expected * 1.5 for c in counts.values())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            reservoir_sample([1], 0)


class TestFixedStepCenters:
    def test_extracts_every_nk_th(self):
        # Paper: extract the N/k, 2N/k, ..., N items as centers.
        items = list(range(1, 13))
        assert fixed_step_centers(items, 3) == [4, 8, 12]

    def test_k_larger_than_n(self):
        assert fixed_step_centers([1, 2], 5) == [1, 2]

    def test_empty(self):
        assert fixed_step_centers([], 3) == []

    def test_composition_monoid_is_order_preserving(self):
        items = ["a", "b", "c", "d"]
        assert fixed_step_centers(items, 2) == ["b", "d"]


class TestAssignToCenters:
    def test_single_closest(self):
        assert assign_to_centers("aaaa", ["aaab", "zzzz"]) == [0]

    def test_delta_widens_assignment(self):
        indices = assign_to_centers("abcx", ["abcd", "abce"], delta=1.0)
        assert indices == [0, 1]

    def test_no_centers(self):
        with pytest.raises(ValueError):
            assign_to_centers("x", [])


class TestSinglePassKMeans:
    def test_every_item_assigned(self):
        items = [f"word{i}" for i in range(50)]
        clusters = single_pass_kmeans(items, k=5)
        assigned = [x for members in clusters.values() for x in members]
        assert len(assigned) >= 50  # >= because of multi-assignment

    def test_similar_items_cluster_together(self):
        items = ["apple", "appla", "zebra", "zebro"]
        clusters = single_pass_kmeans(items, k=2, centers=["apple", "zebra"])
        by_center = {min(m): set(m) for m in clusters.values()}
        assert {"apple", "appla"} in by_center.values() or any(
            {"apple", "appla"} <= s for s in by_center.values()
        )

    def test_deterministic(self):
        items = [f"w{i}" for i in range(30)]
        assert single_pass_kmeans(items, 3, seed=9) == single_pass_kmeans(items, 3, seed=9)


class TestMultiPassKMeans:
    def test_partitions_all_items(self):
        items = ["aa", "ab", "zz", "zy", "mm"]
        clusters = multi_pass_kmeans(items, k=2, iterations=3)
        assigned = sorted(x for m in clusters.values() for x in m)
        assert assigned == sorted(items)

    def test_converges_to_stable_clusters(self):
        items = ["cat", "bat", "hat", "dog", "log", "fog"]
        few = multi_pass_kmeans(items, k=2, iterations=1, seed=4)
        many = multi_pass_kmeans(items, k=2, iterations=20, seed=4)
        assert len(many) <= len(items)
        assert sum(len(m) for m in many.values()) == len(items)
        assert few is not None

    def test_empty_input(self):
        assert multi_pass_kmeans([], k=2) == {}


class TestHierarchicalCluster:
    def test_merges_similar_items(self):
        clusters = hierarchical_cluster(["smith", "smyth", "jones"], threshold=0.7)
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]

    def test_high_threshold_keeps_singletons(self):
        clusters = hierarchical_cluster(["aa", "zz"], threshold=0.99)
        assert len(clusters) == 2

    def test_zero_threshold_merges_everything(self):
        clusters = hierarchical_cluster(["aa", "zz", "mm"], threshold=0.0)
        assert len(clusters) == 1
