"""Unit tests for transitive closure, fusion, and repair application."""

import pytest

from repro.cleaning import (
    DuplicatePair,
    FDViolation,
    TermRepair,
    UnionFind,
    apply_term_repairs,
    close_pairs,
    elect_representatives,
    entity_clusters,
    fuse_duplicates,
    repair_fd_by_majority,
)


class TestUnionFind:
    def test_separate_then_union(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(2)
        assert uf.find(1) != uf.find(2)
        uf.union(1, 2)
        assert uf.find(1) == uf.find(2)

    def test_transitivity(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.find(1) == uf.find(3)

    def test_groups(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.add("c")
        groups = uf.groups()
        sizes = sorted(len(v) for v in groups.values())
        assert sizes == [1, 2]

    def test_idempotent_union(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(1, 2)
        assert len(uf.groups()) == 1


class TestClosePairs:
    def test_chains_close(self):
        clusters = close_pairs([(1, 2), (2, 3), (7, 8)])
        assert sorted(map(tuple, clusters)) == [(1, 2, 3), (7, 8)]

    def test_empty(self):
        assert close_pairs([]) == []

    def test_entity_clusters_from_duplicate_pairs(self):
        pairs = [
            DuplicatePair(0, 1, {}, {}),
            DuplicatePair(1, 2, {}, {}),
        ]
        assert entity_clusters(pairs) == [[0, 1, 2]]


class TestRepresentatives:
    def test_default_smallest_id(self):
        mapping = elect_representatives([[3, 1, 2]], {1: {}, 2: {}, 3: {}})
        assert mapping == {1: 1, 2: 1, 3: 1}

    def test_score_function(self):
        records = {1: {"len": 5}, 2: {"len": 1}}
        mapping = elect_representatives([[1, 2]], records, score=lambda r: r["len"])
        assert mapping[1] == 2


class TestFuseDuplicates:
    def test_keeps_one_per_cluster(self):
        records = [{"_rid": i, "v": i} for i in range(4)]
        pairs = [DuplicatePair(0, 1, records[0], records[1]),
                 DuplicatePair(1, 2, records[1], records[2])]
        fused = fuse_duplicates(records, pairs)
        assert [r["_rid"] for r in fused] == [0, 3]

    def test_no_pairs_identity(self):
        records = [{"_rid": 0}, {"_rid": 1}]
        assert fuse_duplicates(records, []) == records


class TestApplyTermRepairs:
    def test_scalar_attribute(self):
        records = [{"name": "jhon"}, {"name": "mary"}]
        repaired, changed = apply_term_repairs(
            records, "name", [TermRepair("jhon", ("john",))]
        )
        assert changed == 1
        assert repaired[0]["name"] == "john"
        assert repaired[1]["name"] == "mary"

    def test_list_attribute(self):
        records = [{"authors": ["jhon", "mary", "jhon"]}]
        repaired, changed = apply_term_repairs(
            records, "authors", [TermRepair("jhon", ("john",))]
        )
        assert changed == 2
        assert repaired[0]["authors"] == ["john", "mary", "john"]

    def test_repair_without_suggestion_ignored(self):
        records = [{"name": "xx"}]
        repaired, changed = apply_term_repairs(
            records, "name", [TermRepair("xx", ())]
        )
        assert changed == 0 and repaired == records

    def test_originals_not_mutated(self):
        records = [{"name": "jhon"}]
        apply_term_repairs(records, "name", [TermRepair("jhon", ("john",))])
        assert records[0]["name"] == "jhon"


class TestRepairFDByMajority:
    def test_majority_wins(self):
        records = [
            {"k": "a", "v": 1},
            {"k": "a", "v": 1},
            {"k": "a", "v": 2},
            {"k": "b", "v": 9},
        ]
        violations = [FDViolation("a", (1, 2))]
        repaired, changed = repair_fd_by_majority(records, violations, ["k"], "v")
        assert changed == 1
        assert all(r["v"] == 1 for r in repaired if r["k"] == "a")
        assert repaired[3]["v"] == 9  # untouched group

    def test_after_repair_fd_holds(self):
        from repro.cleaning import check_fd
        from repro.engine import Cluster

        records = [{"k": i % 3, "v": (i * 7) % 4} for i in range(30)]
        cluster = Cluster(num_nodes=2)
        violations = check_fd(cluster.parallelize(records), ["k"], ["v"]).collect()
        repaired, _ = repair_fd_by_majority(records, violations, ["k"], "v")
        cluster2 = Cluster(num_nodes=2)
        assert check_fd(cluster2.parallelize(repaired), ["k"], ["v"]).collect() == []

    def test_compound_lhs(self):
        records = [
            {"a": 1, "b": 2, "v": "x"},
            {"a": 1, "b": 2, "v": "y"},
            {"a": 1, "b": 2, "v": "x"},
        ]
        violations = [FDViolation((1, 2), ("x", "y"))]
        repaired, changed = repair_fd_by_majority(records, violations, ["a", "b"], "v")
        assert changed == 1
        assert {r["v"] for r in repaired} == {"x"}


class TestIterationMonoid:
    def test_run_applies_n_rounds(self):
        from repro.monoid import IterationMonoid

        m = IterationMonoid()
        result = m.run(lambda s: s + 1, 0, rounds=5)
        assert result == 5

    def test_zero_rounds_identity(self):
        from repro.monoid import IterationMonoid

        assert IterationMonoid().run(lambda s: s * 2, 7, rounds=0) == 7

    def test_merge_composes_in_order(self):
        from repro.monoid import IterationMonoid

        m = IterationMonoid()
        combined = m.merge(lambda s: s + "a", lambda s: s + "b")
        assert combined("") == "ab"
