"""Unit tests for FD and denial-constraint checking."""

import pickle

import pytest

from repro.cleaning import (
    DenialConstraint,
    SingleFilter,
    TuplePredicate,
    check_dc,
    check_fd,
)
from repro.cleaning.dc_kernel import null_safe_compare, parse_dc, plan_dc
from repro.engine import Cluster


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


def fd_records():
    # address -> nationkey violated for addr0 (two nation keys).
    return [
        {"address": "addr0", "nationkey": 1, "phone": "111-a"},
        {"address": "addr0", "nationkey": 2, "phone": "111-b"},
        {"address": "addr1", "nationkey": 3, "phone": "222-a"},
        {"address": "addr1", "nationkey": 3, "phone": "222-b"},
    ]


class TestCheckFD:
    @pytest.mark.parametrize("grouping", ["aggregate", "sort", "hash"])
    def test_detects_violation_group(self, cluster, grouping):
        ds = cluster.parallelize(fd_records())
        violations = check_fd(ds, ["address"], ["nationkey"], grouping=grouping).collect()
        assert len(violations) == 1
        assert violations[0].key == "addr0"
        assert set(violations[0].rhs_values) == {1, 2}

    def test_no_violations_on_clean_data(self, cluster):
        clean = [{"a": i, "b": i * 2} for i in range(10)]
        ds = cluster.parallelize(clean)
        assert check_fd(ds, ["a"], ["b"]).collect() == []

    def test_compound_lhs(self, cluster):
        records = [
            {"x": 1, "y": 1, "z": "p"},
            {"x": 1, "y": 2, "z": "q"},
            {"x": 1, "y": 1, "z": "r"},  # violates (x,y) -> z with the first
        ]
        ds = cluster.parallelize(records)
        violations = check_fd(ds, ["x", "y"], ["z"]).collect()
        assert len(violations) == 1
        assert violations[0].key == (1, 1)

    def test_computed_lhs_with_callable(self, cluster):
        # FD: prefix(phone) determines address - paper's FD1 shape reversed.
        records = [
            {"address": "a", "phone": "111-x"},
            {"address": "b", "phone": "111-y"},
        ]
        ds = cluster.parallelize(records)
        violations = check_fd(
            ds, [lambda r: r["phone"][:3]], ["address"]
        ).collect()
        assert len(violations) == 1

    def test_violation_keeps_witness_records(self, cluster):
        ds = cluster.parallelize(fd_records())
        [violation] = check_fd(ds, ["address"], ["nationkey"]).collect()
        assert len(violation.records) == 2

    def test_keep_records_false_drops_witnesses(self, cluster):
        ds = cluster.parallelize(fd_records())
        [violation] = check_fd(
            ds, ["address"], ["nationkey"], keep_records=False
        ).collect()
        assert violation.records == ()

    def test_unknown_grouping_rejected(self, cluster):
        ds = cluster.parallelize(fd_records())
        with pytest.raises(ValueError):
            check_fd(ds, ["address"], ["nationkey"], grouping="merge")

    def test_aggregate_and_sort_agree(self, cluster):
        records = [{"k": i % 5, "v": i % 7} for i in range(70)]
        a = check_fd(cluster.parallelize(records), ["k"], ["v"], grouping="aggregate").collect()
        b = check_fd(cluster.parallelize(records), ["k"], ["v"], grouping="sort").collect()
        assert {v.key for v in a} == {v.key for v in b}
        assert {v.key: set(v.rhs_values) for v in a} == {
            v.key: set(v.rhs_values) for v in b
        }


def dc_records():
    return [
        {"price": 10.0, "discount": 0.05},
        {"price": 20.0, "discount": 0.01},  # violated with the first row
        {"price": 30.0, "discount": 0.10},
    ]


PSI = DenialConstraint(
    predicates=(
        TuplePredicate("price", "<", "price"),
        TuplePredicate("discount", ">", "discount"),
    ),
)


class TestCheckDC:
    @pytest.mark.parametrize("strategy", ["banded", "matrix", "cartesian", "minmax"])
    def test_strategies_find_same_violations(self, strategy):
        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(dc_records())
        pairs = check_dc(ds, PSI, strategy=strategy).collect()
        found = {(t1["price"], t2["price"]) for t1, t2 in pairs}
        assert found == {(10.0, 20.0)}

    def test_left_filter_applied(self):
        cluster = Cluster(num_nodes=4)
        constrained = DenialConstraint(
            predicates=PSI.predicates,
            left_filters=(SingleFilter("price", "<", 15.0),),
        )
        ds = cluster.parallelize(dc_records())
        pairs = check_dc(ds, constrained, strategy="matrix").collect()
        assert all(t1["price"] < 15.0 for t1, _ in pairs)

    def test_minmax_does_not_push_filter(self):
        # BigDansing treats the rule as a black-box UDF: the left filter is
        # evaluated inside the predicate, so results agree with the pushed
        # plans even though nothing was pruned.
        constrained = DenialConstraint(
            predicates=PSI.predicates,
            left_filters=(SingleFilter("price", "<", 15.0),),
        )
        c1, c2 = Cluster(num_nodes=4), Cluster(num_nodes=4)
        matrix = check_dc(c1.parallelize(dc_records()), constrained, "matrix").collect()
        minmax = check_dc(c2.parallelize(dc_records()), constrained, "minmax").collect()
        key = lambda pairs: {(a["price"], b["price"]) for a, b in pairs}
        assert key(matrix) == key(minmax)
        # ...but BigDansing paid for far more work.
        assert c2.metrics.comparisons > c1.metrics.comparisons

    def test_self_pairs_excluded(self):
        cluster = Cluster(num_nodes=4)
        same = [{"price": 10.0, "discount": 0.05}] * 3
        ds = cluster.parallelize(same)
        assert check_dc(ds, PSI, strategy="matrix").collect() == []

    def test_violated_by_semantics(self):
        t1 = {"price": 1.0, "discount": 0.9}
        t2 = {"price": 2.0, "discount": 0.1}
        assert PSI.violated_by(t1, t2)
        assert not PSI.violated_by(t2, t1)
        assert not PSI.violated_by(t1, t1)

    def test_banded_prunes_examined_pairs(self):
        cluster = Cluster(num_nodes=4)
        records = [
            {"price": float(i), "discount": ((3 * i) % 7) / 10} for i in range(40)
        ]
        pairs = check_dc(cluster.parallelize(records), PSI, "banded").collect()
        assert pairs
        # The examined count (verified) sits strictly below the pair
        # universe (comparisons) — the banded range scan pruned.
        assert 0 < cluster.metrics.verified < cluster.metrics.comparisons


class TestNullSafety:
    """Regression: ordered comparisons on missing/None attributes used to
    raise ``TypeError`` (``None < 5``); they are three-valued now."""

    def test_tuple_predicate_null_on_either_side(self):
        pred = TuplePredicate("price", "<", "price")
        assert pred.holds({"price": 1.0}, {"price": 2.0})
        assert not pred.holds({"price": None}, {"price": 2.0})
        assert not pred.holds({"price": 1.0}, {"price": None})
        assert not pred.holds({"price": None}, {"price": None})
        assert not pred.holds({}, {"price": 2.0})  # missing attribute
        assert not pred.holds({"price": 1.0}, {})

    def test_single_filter_null(self):
        cap = SingleFilter("price", "<", 15.0)
        assert cap.holds({"price": 1.0})
        assert not cap.holds({"price": None})
        assert not cap.holds({})

    def test_equality_with_null_never_satisfies(self):
        # SQL three-valued logic: NULL = NULL is unknown, not a violation.
        pred = TuplePredicate("zip", "==", "zip")
        assert not pred.holds({"zip": None}, {"zip": None})
        ne = TuplePredicate("zip", "!=", "zip")
        assert not ne.holds({"zip": None}, {"zip": 1})

    def test_null_safe_compare_table(self):
        for op in ("<", "<=", ">", ">=", "==", "!="):
            assert not null_safe_compare(op, None, 1)
            assert not null_safe_compare(op, 1, None)
        assert null_safe_compare("<", 1, 2)
        assert not null_safe_compare("<", 2, 1)

    @pytest.mark.parametrize("strategy", ["banded", "matrix", "cartesian", "minmax"])
    def test_check_dc_survives_nulls_on_both_tuple_sides(self, strategy):
        records = [
            {"price": None, "discount": 0.5},
            {"price": 10.0, "discount": None},
            {"price": 10.0, "discount": 0.05},
            {"price": 20.0, "discount": 0.01},  # violates with the row above
            {"price": None, "discount": None},
        ]
        cluster = Cluster(num_nodes=4)
        pairs = check_dc(cluster.parallelize(records), PSI, strategy).collect()
        found = {(t1["price"], t2["price"]) for t1, t2 in pairs}
        assert found == {(10.0, 20.0)}
        # No null tuple ever takes part in a violation.
        for t1, t2 in pairs:
            assert t1["price"] is not None and t2["price"] is not None

    def test_nan_band_values_match_oracle(self):
        # NaN never satisfies a comparison but corrupts sorted-list
        # bisection; the kernel must treat it like a null.
        nan = float("nan")
        records = [
            {"a": nan, "b": 1, "_rid": 0},
            {"a": 1.0, "b": 2, "_rid": 1},
            {"a": 2.0, "b": 1, "_rid": 2},
            {"a": nan, "b": 0, "_rid": 3},
            {"a": 0.5, "b": 9, "_rid": 4},
        ]
        constraint = DenialConstraint(
            predicates=(
                TuplePredicate("a", "<", "a"),
                TuplePredicate("b", ">", "b"),
            ),
        )
        cluster = Cluster(num_nodes=3)
        got = {
            (t1["_rid"], t2["_rid"])
            for t1, t2 in check_dc(
                cluster.parallelize(records), constraint, "banded"
            ).collect()
        }
        assert got == {(1, 2), (4, 1), (4, 2)}

    def test_left_filter_with_nulls(self):
        constrained = DenialConstraint(
            predicates=PSI.predicates,
            left_filters=(SingleFilter("price", "<", 15.0),),
        )
        records = [
            {"price": None, "discount": 0.9},
            {"price": 10.0, "discount": 0.05},
            {"price": 20.0, "discount": 0.01},
        ]
        cluster = Cluster(num_nodes=4)
        pairs = check_dc(
            cluster.parallelize(records), constrained, "banded"
        ).collect()
        assert {(a["price"], b["price"]) for a, b in pairs} == {(10.0, 20.0)}


class TestStableRowIds:
    """Regression: ``violated_by`` deduped self pairs by object identity,
    which breaks once records are pickled through the parallel backend."""

    def test_self_pair_by_rid_survives_pickling(self):
        row = {"price": 10.0, "discount": 0.05, "_rid": 7}
        clone = pickle.loads(pickle.dumps(row))
        assert row is not clone
        # A symmetric tautological rule would pair a row with its own copy
        # if identity were the only guard.
        anything = DenialConstraint(
            predicates=(TuplePredicate("price", "<=", "price"),),
        )
        assert not anything.violated_by(row, clone)
        assert not anything.violated_by(clone, row)

    def test_distinct_rows_with_equal_values_still_pair(self):
        a = {"price": 10.0, "discount": 0.05, "_rid": 1}
        b = {"price": 10.0, "discount": 0.05, "_rid": 2}
        anything = DenialConstraint(
            predicates=(TuplePredicate("price", "<=", "price"),),
        )
        assert anything.violated_by(a, b)

    def test_mixed_rid_types_do_not_crash(self):
        # A string ``_rid`` next to an id-less row (positional int rid)
        # used to raise TypeError in the exactly-once comparison.
        records = [
            {"price": 10.0, "discount": 0.05, "_rid": "a7"},
            {"price": 20.0, "discount": 0.01},
        ]
        cluster = Cluster(num_nodes=3)
        pairs = check_dc(cluster.parallelize(records), PSI, "banded").collect()
        assert {(a["price"], b["price"]) for a, b in pairs} == {(10.0, 20.0)}

    def test_symmetric_violations_emitted_once_per_unordered_pair(self):
        # zip==zip and city!=city violates in both orders; the banded
        # kernel must report the unordered pair exactly once, rid-ordered.
        constraint = DenialConstraint(
            predicates=(
                TuplePredicate("zip", "==", "zip"),
                TuplePredicate("city", "!=", "city"),
            ),
        )
        records = [
            {"zip": 10, "city": "x", "_rid": 0},
            {"zip": 10, "city": "y", "_rid": 1},
            {"zip": 10, "city": "x", "_rid": 2},
        ]
        cluster = Cluster(num_nodes=4)
        pairs = check_dc(
            cluster.parallelize(records), constraint, "banded"
        ).collect()
        found = sorted((a["_rid"], b["_rid"]) for a, b in pairs)
        assert found == [(0, 1), (1, 2)]


class TestDCPlanner:
    def test_equality_becomes_prefix_and_band_selected(self):
        constraint = DenialConstraint(
            predicates=(
                TuplePredicate("c", "==", "c"),
                TuplePredicate("a", "<", "a"),
                TuplePredicate("b", "!=", "b"),
            ),
        )
        plan = plan_dc(constraint)
        assert plan.eq_idx == (0,)
        assert plan.band_idx == 1
        assert plan.residual_idx == (2,)
        assert "c==c" in plan.describe()

    def test_most_selective_band_wins(self):
        # ``a`` is constant (band keeps everything); ``b`` is strictly
        # increasing (band halves the candidates): the planner must band
        # on ``b``.
        constraint = DenialConstraint(
            predicates=(
                TuplePredicate("a", "<=", "a"),
                TuplePredicate("b", "<", "b"),
            ),
        )
        records = [{"a": 1, "b": i} for i in range(50)]
        plan = plan_dc(constraint, records)
        assert plan.band_idx == 1

    def test_parse_dc_round_trip(self):
        constraint = parse_dc(
            "t1.price < t2.price and t1.discount > t2.discount",
            where="t1.price < 1000",
            name="psi",
        )
        assert constraint.predicates == (
            TuplePredicate("price", "<", "price"),
            TuplePredicate("discount", ">", "discount"),
        )
        assert constraint.left_filters == (SingleFilter("price", "<", 1000),)
        assert constraint.name == "psi"

    def test_parse_dc_case_insensitive_and(self):
        constraint = parse_dc(
            "t1.price < t2.price AND t1.discount > t2.discount"
        )
        assert len(constraint.predicates) == 2
        assert constraint.predicates[1] == TuplePredicate("discount", ">", "discount")

    def test_parse_dc_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_dc("t1.price ~ t2.price")
        with pytest.raises(ValueError):
            parse_dc("price < t2.price")
        with pytest.raises(ValueError):
            parse_dc("")
        # An unknown conjunction must fail loudly, never silently parse
        # into a garbage attribute name that matches nothing.
        with pytest.raises(ValueError):
            parse_dc("t1.price < t2.price OR t1.discount > t2.discount")


class TestImportStar:
    def test_import_star_matches_all(self):
        """``from repro.cleaning.denial import *`` exposes exactly
        ``__all__``, and every listed name resolves — including the
        deliberately re-exported ``self_theta_join``."""
        import repro.cleaning.denial as denial

        namespace: dict = {}
        exec("from repro.cleaning.denial import *", namespace)
        exported = {k for k in namespace if not k.startswith("_")}
        assert exported == set(denial.__all__)
        for name in denial.__all__:
            assert getattr(denial, name) is not None
        assert namespace["self_theta_join"] is denial.self_theta_join

    def test_package_surface_consistent(self):
        """The package-level re-exports stay in sync with the module."""
        import repro.cleaning as cleaning
        import repro.cleaning.denial as denial

        for name in (
            "DenialConstraint", "TuplePredicate", "SingleFilter",
            "check_dc", "check_dc_parallel", "check_dc_columnar",
            "self_theta_join",
        ):
            assert getattr(cleaning, name) is getattr(denial, name)
            assert name in cleaning.__all__
