"""Unit tests for FD and denial-constraint checking."""

import pytest

from repro.cleaning import (
    DenialConstraint,
    SingleFilter,
    TuplePredicate,
    check_dc,
    check_fd,
)
from repro.engine import Cluster


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


def fd_records():
    # address -> nationkey violated for addr0 (two nation keys).
    return [
        {"address": "addr0", "nationkey": 1, "phone": "111-a"},
        {"address": "addr0", "nationkey": 2, "phone": "111-b"},
        {"address": "addr1", "nationkey": 3, "phone": "222-a"},
        {"address": "addr1", "nationkey": 3, "phone": "222-b"},
    ]


class TestCheckFD:
    @pytest.mark.parametrize("grouping", ["aggregate", "sort", "hash"])
    def test_detects_violation_group(self, cluster, grouping):
        ds = cluster.parallelize(fd_records())
        violations = check_fd(ds, ["address"], ["nationkey"], grouping=grouping).collect()
        assert len(violations) == 1
        assert violations[0].key == "addr0"
        assert set(violations[0].rhs_values) == {1, 2}

    def test_no_violations_on_clean_data(self, cluster):
        clean = [{"a": i, "b": i * 2} for i in range(10)]
        ds = cluster.parallelize(clean)
        assert check_fd(ds, ["a"], ["b"]).collect() == []

    def test_compound_lhs(self, cluster):
        records = [
            {"x": 1, "y": 1, "z": "p"},
            {"x": 1, "y": 2, "z": "q"},
            {"x": 1, "y": 1, "z": "r"},  # violates (x,y) -> z with the first
        ]
        ds = cluster.parallelize(records)
        violations = check_fd(ds, ["x", "y"], ["z"]).collect()
        assert len(violations) == 1
        assert violations[0].key == (1, 1)

    def test_computed_lhs_with_callable(self, cluster):
        # FD: prefix(phone) determines address - paper's FD1 shape reversed.
        records = [
            {"address": "a", "phone": "111-x"},
            {"address": "b", "phone": "111-y"},
        ]
        ds = cluster.parallelize(records)
        violations = check_fd(
            ds, [lambda r: r["phone"][:3]], ["address"]
        ).collect()
        assert len(violations) == 1

    def test_violation_keeps_witness_records(self, cluster):
        ds = cluster.parallelize(fd_records())
        [violation] = check_fd(ds, ["address"], ["nationkey"]).collect()
        assert len(violation.records) == 2

    def test_keep_records_false_drops_witnesses(self, cluster):
        ds = cluster.parallelize(fd_records())
        [violation] = check_fd(
            ds, ["address"], ["nationkey"], keep_records=False
        ).collect()
        assert violation.records == ()

    def test_unknown_grouping_rejected(self, cluster):
        ds = cluster.parallelize(fd_records())
        with pytest.raises(ValueError):
            check_fd(ds, ["address"], ["nationkey"], grouping="merge")

    def test_aggregate_and_sort_agree(self, cluster):
        records = [{"k": i % 5, "v": i % 7} for i in range(70)]
        a = check_fd(cluster.parallelize(records), ["k"], ["v"], grouping="aggregate").collect()
        b = check_fd(cluster.parallelize(records), ["k"], ["v"], grouping="sort").collect()
        assert {v.key for v in a} == {v.key for v in b}
        assert {v.key: set(v.rhs_values) for v in a} == {
            v.key: set(v.rhs_values) for v in b
        }


def dc_records():
    return [
        {"price": 10.0, "discount": 0.05},
        {"price": 20.0, "discount": 0.01},  # violated with the first row
        {"price": 30.0, "discount": 0.10},
    ]


PSI = DenialConstraint(
    predicates=(
        TuplePredicate("price", "<", "price"),
        TuplePredicate("discount", ">", "discount"),
    ),
)


class TestCheckDC:
    @pytest.mark.parametrize("strategy", ["matrix", "cartesian", "minmax"])
    def test_strategies_find_same_violations(self, strategy):
        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(dc_records())
        pairs = check_dc(ds, PSI, strategy=strategy).collect()
        found = {(t1["price"], t2["price"]) for t1, t2 in pairs}
        assert found == {(10.0, 20.0)}

    def test_left_filter_applied(self):
        cluster = Cluster(num_nodes=4)
        constrained = DenialConstraint(
            predicates=PSI.predicates,
            left_filters=(SingleFilter("price", "<", 15.0),),
        )
        ds = cluster.parallelize(dc_records())
        pairs = check_dc(ds, constrained, strategy="matrix").collect()
        assert all(t1["price"] < 15.0 for t1, _ in pairs)

    def test_minmax_does_not_push_filter(self):
        # BigDansing treats the rule as a black-box UDF: the left filter is
        # evaluated inside the predicate, so results agree with the pushed
        # plans even though nothing was pruned.
        constrained = DenialConstraint(
            predicates=PSI.predicates,
            left_filters=(SingleFilter("price", "<", 15.0),),
        )
        c1, c2 = Cluster(num_nodes=4), Cluster(num_nodes=4)
        matrix = check_dc(c1.parallelize(dc_records()), constrained, "matrix").collect()
        minmax = check_dc(c2.parallelize(dc_records()), constrained, "minmax").collect()
        key = lambda pairs: {(a["price"], b["price"]) for a, b in pairs}
        assert key(matrix) == key(minmax)
        # ...but BigDansing paid for far more work.
        assert c2.metrics.comparisons > c1.metrics.comparisons

    def test_self_pairs_excluded(self):
        cluster = Cluster(num_nodes=4)
        same = [{"price": 10.0, "discount": 0.05}] * 3
        ds = cluster.parallelize(same)
        assert check_dc(ds, PSI, strategy="matrix").collect() == []

    def test_violated_by_semantics(self):
        t1 = {"price": 1.0, "discount": 0.9}
        t2 = {"price": 2.0, "discount": 0.1}
        assert PSI.violated_by(t1, t2)
        assert not PSI.violated_by(t2, t1)
        assert not PSI.violated_by(t1, t1)
