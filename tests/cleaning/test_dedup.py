"""Unit tests for duplicate elimination."""

import pytest

from repro.cleaning import (
    NO_FILTERS,
    DuplicatePair,
    deduplicate,
    ensure_rids,
    register_metric,
)
from repro.engine import Cluster


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


def people():
    return [
        {"name": "alice smith", "city": "basel"},
        {"name": "alice smith", "city": "basel"},       # exact duplicate
        {"name": "alice smyth", "city": "basel"},       # near duplicate
        {"name": "bob jones", "city": "bern"},
    ]


class TestEnsureRids:
    def test_assigns_unique_rids(self, cluster):
        ds = ensure_rids(cluster.parallelize(people()))
        rids = [r["_rid"] for r in ds.collect()]
        assert sorted(rids) == [0, 1, 2, 3]

    def test_existing_rids_preserved(self, cluster):
        records = [{"x": 1, "_rid": 42}]
        ds = ensure_rids(cluster.parallelize(records))
        assert ds.collect()[0]["_rid"] == 42


class TestDeduplicate:
    def test_exact_duplicates_found_with_default_blocking(self, cluster):
        ds = cluster.parallelize(people())
        pairs = deduplicate(ds, ["name"], theta=0.95).collect()
        names = {(p.left["name"], p.right["name"]) for p in pairs}
        assert names == {("alice smith", "alice smith")}

    def test_token_filtering_finds_near_duplicates(self, cluster):
        ds = cluster.parallelize(people())
        pairs = deduplicate(ds, ["name"], op="token_filtering", theta=0.85).collect()
        found = {frozenset((p.left["name"], p.right["name"])) for p in pairs}
        assert frozenset(("alice smith", "alice smyth")) in found

    def test_each_pair_reported_once_despite_overlapping_blocks(self, cluster):
        # token blocks overlap heavily; the pair set must still be unique.
        ds = cluster.parallelize(people())
        pairs = deduplicate(ds, ["name"], op="token_filtering", theta=0.8).collect()
        ids = [(p.left_id, p.right_id) for p in pairs]
        assert len(ids) == len(set(ids))
        assert all(l < r for l, r in ids)

    def test_block_on_attribute_restricts_comparisons(self, cluster):
        records = [
            {"name": "sam", "city": "a"},
            {"name": "sam", "city": "b"},  # same name, different block
        ]
        ds = cluster.parallelize(records)
        pairs = deduplicate(ds, ["name"], block_on="city", theta=0.9).collect()
        assert pairs == []

    def test_block_on_callable(self, cluster):
        ds = cluster.parallelize(people())
        pairs = deduplicate(
            ds, ["name"], block_on=lambda r: r["city"], theta=0.95
        ).collect()
        assert len(pairs) == 1

    def test_kmeans_blocking(self, cluster):
        ds = cluster.parallelize(people())
        pairs = deduplicate(
            ds, ["name"], op="kmeans", op_params={"k": 2}, theta=0.95
        ).collect()
        found = {frozenset((p.left_id, p.right_id)) for p in pairs}
        assert frozenset((0, 1)) in found

    def test_multi_attribute_similarity_is_averaged(self, cluster):
        records = [
            {"a": "same", "b": "different"},
            {"a": "same", "b": "DIFFERENT!"},
        ]
        ds = cluster.parallelize(records)
        high = deduplicate(ds, ["a", "b"], theta=0.95, block_on=lambda r: 1).collect()
        low = deduplicate(ds, ["a", "b"], theta=0.5, block_on=lambda r: 1).collect()
        assert high == [] and len(low) == 1

    def test_requires_attributes(self, cluster):
        with pytest.raises(ValueError):
            deduplicate(cluster.parallelize(people()), [])

    def test_block_on_and_op_mutually_exclusive(self, cluster):
        with pytest.raises(ValueError):
            deduplicate(
                cluster.parallelize(people()), ["name"],
                block_on="city", op="token_filtering",
            )

    def test_comparisons_charged(self, cluster):
        ds = cluster.parallelize(people())
        deduplicate(ds, ["name"], op="token_filtering", theta=0.8).collect()
        assert cluster.metrics.comparisons > 0

    def test_grouping_strategies_agree(self):
        records = people() * 5
        results = {}
        for grouping in ("aggregate", "sort", "hash"):
            c = Cluster(num_nodes=4)
            ds = c.parallelize([dict(r) for r in records])
            pairs = deduplicate(
                ds, ["name"], op="token_filtering", theta=0.85, grouping=grouping
            ).collect()
            results[grouping] = {(p.left_id, p.right_id) for p in pairs}
        assert results["aggregate"] == results["sort"] == results["hash"]

    def test_blocking_prunes_comparisons_vs_exhaustive(self):
        records = [{"name": f"name-{i:03d}"} for i in range(60)]
        c_blocked = Cluster(num_nodes=4)
        deduplicate(
            c_blocked.parallelize(records), ["name"], op="token_filtering", theta=0.99
        ).collect()
        # Exhaustive comparison count would be 60*59/2 = 1770 pairs; token
        # blocking on 3-grams of zero-padded names compares fewer pairs than
        # that only if groups split -- here names share "nam"/"ame" tokens so
        # instead verify the dedup pair canonicalization kept pairs unique.
        assert c_blocked.metrics.comparisons <= 1770


class TestVerifiedComparisonCounts:
    """Regression pins for the kernel's exactly-once verification.

    With token blocking a pair sharing k q-grams lands in k blocks; the
    kernel must charge it as one candidate and invoke the metric on it at
    most once (least-frequent-token ownership), never k times.
    """

    def test_token_blocking_charges_each_pair_once(self, cluster):
        # Three similar names sharing many 3-grams plus one outlier:
        # exactly 3 unique candidate pairs, however many blocks overlap.
        ds = cluster.parallelize(people())
        deduplicate(ds, ["name"], op="token_filtering", theta=0.8).collect()
        assert cluster.metrics.comparisons == 3
        assert 0 < cluster.metrics.verified <= 3

    def test_metric_invoked_once_per_pair_despite_shared_qgrams(self):
        calls: list[tuple[str, str]] = []

        def counting_metric(a: str, b: str) -> float:
            calls.append((a, b) if a <= b else (b, a))
            return 1.0 if a == b else 0.0

        register_metric("counting_test_metric", counting_metric)
        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(people())
        deduplicate(
            ds, ["name"], metric="counting_test_metric",
            op="token_filtering", theta=0.9,
        ).collect()
        # Custom metrics get no LD bounds, so every unique candidate pair
        # runs the metric exactly once (one comparison attribute) — the two
        # "alice" names share ~9 3-grams, yet only 3 calls happen in total.
        assert cluster.metrics.comparisons == 3
        assert cluster.metrics.verified == 3
        assert len(calls) == 3

    def test_filters_never_change_the_pair_set(self, cluster):
        records = people() * 3
        results = {}
        for label, filters in (("on", None), ("off", NO_FILTERS)):
            c = Cluster(num_nodes=4)
            ds = c.parallelize([dict(r) for r in records])
            pairs = deduplicate(
                ds, ["name"], op="token_filtering", theta=0.85, filters=filters
            ).collect()
            results[label] = {(p.left_id, p.right_id) for p in pairs}
        assert results["on"] == results["off"]

    def test_verified_never_exceeds_candidates(self, cluster):
        ds = cluster.parallelize(people())
        deduplicate(ds, ["name"], op="token_filtering", theta=0.95).collect()
        assert cluster.metrics.verified <= cluster.metrics.comparisons


class TestDuplicatePair:
    def test_ordering_invariant(self, cluster):
        ds = cluster.parallelize(people())
        for p in deduplicate(ds, ["name"], op="token_filtering", theta=0.8).collect():
            assert isinstance(p, DuplicatePair)
            assert p.left_id < p.right_id
