"""Unit tests for the algebraic rewriter: coalescing and shared-scan DAGs."""

import pytest

from repro.algebra import (
    Nest,
    Reduce,
    Scan,
    Select,
    SharedScanDAG,
    build_shared_dag,
    coalesce_nests,
    leaf_scan,
    optimize_branches,
)
from repro.algebra.rewrite import rename_fields
from repro.monoid import BagMonoid, BinOp, Call, Const, Proj, SetMonoid, Var


def make_fd_branch(key_attr: str, rhs_attr: str, var: str):
    """A miniature FD branch: Reduce over Select over Nest over Scan."""
    scan = Scan("customer", "c")
    nest = Nest(
        child=scan,
        key=Proj(Var("c"), key_attr),
        aggregates=(("partition", SetMonoid(), Proj(Var("c"), rhs_attr)),),
        var=var,
    )
    select = Select(
        nest,
        BinOp(">", Call("count", (Proj(Var(var), "partition"),)), Const(1)),
    )
    return Reduce(select, BagMonoid(), Var(var))


class TestLeafScan:
    def test_finds_scan_through_spine(self):
        branch = make_fd_branch("addr", "phone", "g1")
        scan = leaf_scan(branch)
        assert scan is not None and scan.table == "customer"

    def test_scan_itself(self):
        s = Scan("t", "x")
        assert leaf_scan(s) is s


class TestCoalesceNests:
    def test_same_key_branches_merge(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        b2 = make_fd_branch("addr", "nation", "g2")
        from repro.algebra.rewrite import RewriteReport

        report = RewriteReport()
        out = coalesce_nests([b1, b2], ["fd1", "fd2"], report)
        assert report.coalesced_groups == [("fd1", "fd2")]
        nest1 = out[0].child.child
        nest2 = out[1].child.child
        assert isinstance(nest1, Nest) and nest1 is nest2
        assert len(nest1.aggregates) == 2

    def test_merged_nest_slots_renamed(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        b2 = make_fd_branch("addr", "nation", "g2")
        out = coalesce_nests([b1, b2], ["fd1", "fd2"])
        # Each branch's Select must now reference its own slot (p0 / p1).
        pred1 = out[0].child.predicate
        pred2 = out[1].child.predicate
        assert "p0" in repr(pred1)
        assert "p1" in repr(pred2)

    def test_identical_aggregates_shared(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        b2 = make_fd_branch("addr", "phone", "g2")
        out = coalesce_nests([b1, b2], ["a", "b"])
        nest = out[0].child.child
        assert len(nest.aggregates) == 1

    def test_different_keys_not_merged(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        b2 = make_fd_branch("name", "phone", "g2")
        from repro.algebra.rewrite import RewriteReport

        report = RewriteReport()
        coalesce_nests([b1, b2], ["fd1", "fd2"], report)
        assert report.coalesced_groups == []

    def test_single_branch_untouched(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        assert coalesce_nests([b1]) == [b1]


class TestRenameFields:
    def test_renames_projection_of_target_var(self):
        expr = Proj(Var("g"), "partition")
        assert rename_fields(expr, "g", {"partition": "p0"}) == Proj(Var("g"), "p0")

    def test_other_vars_untouched(self):
        expr = Proj(Var("h"), "partition")
        assert rename_fields(expr, "g", {"partition": "p0"}) == expr

    def test_recurses_into_calls(self):
        expr = Call("count", (Proj(Var("g"), "partition"),))
        out = rename_fields(expr, "g", {"partition": "p3"})
        assert out == Call("count", (Proj(Var("g"), "p3"),))


class TestSharedDAG:
    def test_same_table_shared(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        b2 = make_fd_branch("addr", "nation", "g2")
        from repro.algebra.rewrite import RewriteReport

        report = RewriteReport()
        dag = build_shared_dag([b1, b2], ["fd1", "fd2"], report)
        assert isinstance(dag, SharedScanDAG)
        assert report.shared_scan == "customer"

    def test_single_branch_passthrough(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        assert build_shared_dag([b1]) is b1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_shared_dag([])


class TestOptimizeBranches:
    def test_full_pipeline(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        b2 = make_fd_branch("addr", "nation", "g2")
        dag, report = optimize_branches([b1, b2], ["fd1", "fd2"])
        assert isinstance(dag, SharedScanDAG)
        assert report.any_rewrite
        assert report.coalesced_groups and report.shared_scan

    def test_coalesce_flag_off(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        b2 = make_fd_branch("addr", "nation", "g2")
        dag, report = optimize_branches([b1, b2], coalesce=False)
        assert report.coalesced_groups == []
        # Branch nests remain distinct objects.
        n1 = dag.branches[0].child.child
        n2 = dag.branches[1].child.child
        assert n1 is not n2

    def test_describe_renders_tree(self):
        b1 = make_fd_branch("addr", "phone", "g1")
        text = b1.describe()
        assert "Reduce" in text and "Nest" in text and "Scan" in text
