"""Unit tests for comprehension → algebra translation."""

import pytest

from repro.algebra import (
    Join,
    Nest,
    Reduce,
    Scan,
    Select,
    Translator,
    Unnest,
    conjoin,
    is_grouping,
    make_group_comprehension,
    split_conjuncts,
)
from repro.errors import PlanningError
from repro.monoid import (
    BagMonoid,
    BinOp,
    Bind,
    Comprehension,
    Const,
    Filter,
    Generator,
    Proj,
    SumMonoid,
    Var,
    normalize,
)


@pytest.fixture
def translator():
    return Translator({"customer", "orders", "dictionary"})


def comp(monoid, head, *qualifiers):
    return Comprehension(monoid, head, tuple(qualifiers))


class TestConjuncts:
    def test_split_nested_and(self):
        expr = BinOp("and", BinOp("and", Var("a"), Var("b")), Var("c"))
        assert split_conjuncts(expr) == [Var("a"), Var("b"), Var("c")]

    def test_split_single(self):
        assert split_conjuncts(Var("p")) == [Var("p")]

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) == Const(True)

    def test_conjoin_round_trip(self):
        parts = [Var("a"), Var("b")]
        assert split_conjuncts(conjoin(parts)) == parts


class TestScanTranslation:
    def test_single_generator_becomes_scan_reduce(self, translator):
        c = comp(BagMonoid(), Var("c"), Generator("c", Var("customer")))
        plan = translator.translate(c)
        assert isinstance(plan, Reduce)
        assert isinstance(plan.child, Scan)
        assert plan.child.table == "customer"

    def test_filter_becomes_select(self, translator):
        c = comp(
            BagMonoid(),
            Var("c"),
            Generator("c", Var("customer")),
            Filter(BinOp(">", Proj(Var("c"), "age"), Const(10))),
        )
        plan = translator.translate(c)
        assert isinstance(plan.child, Select)

    def test_unknown_table_rejected(self, translator):
        c = comp(BagMonoid(), Var("x"), Generator("x", Var("nope")))
        with pytest.raises(PlanningError):
            translator.translate(c)

    def test_leftover_bind_rejected(self, translator):
        c = comp(
            BagMonoid(), Var("y"),
            Generator("x", Var("customer")), Bind("y", Var("x")),
        )
        with pytest.raises(PlanningError):
            translator.translate(c)

    def test_no_generators_rejected(self, translator):
        with pytest.raises(PlanningError):
            translator.translate(comp(SumMonoid(), Const(1)))


class TestJoinTranslation:
    def test_two_generators_become_join(self, translator):
        c = comp(
            BagMonoid(),
            Var("c"),
            Generator("c", Var("customer")),
            Generator("o", Var("orders")),
        )
        plan = translator.translate(c)
        assert isinstance(plan.child, Join)

    def test_cross_table_equality_becomes_equi_key(self, translator):
        c = comp(
            BagMonoid(),
            Var("c"),
            Generator("c", Var("customer")),
            Generator("o", Var("orders")),
            Filter(
                BinOp("==", Proj(Var("c"), "id"), Proj(Var("o"), "custid"))
            ),
        )
        plan = translator.translate(c)
        join = plan.child
        assert isinstance(join, Join)
        assert join.left_keys == (Proj(Var("c"), "id"),)
        assert join.right_keys == (Proj(Var("o"), "custid"),)

    def test_single_side_filter_pushed_into_branch(self, translator):
        c = comp(
            BagMonoid(),
            Var("c"),
            Generator("c", Var("customer")),
            Generator("o", Var("orders")),
            Filter(BinOp(">", Proj(Var("o"), "total"), Const(100))),
        )
        plan = translator.translate(c)
        join = plan.child
        assert isinstance(join.right, Select)


class TestGroupingTranslation:
    def test_grouping_comprehension_is_detected(self):
        g = make_group_comprehension(
            key=Proj(Var("c"), "addr"),
            value=Var("c"),
            qualifiers=(Generator("c", Var("customer")),),
        )
        assert is_grouping(g)

    def test_non_grouping_not_detected(self):
        c = comp(BagMonoid(), Var("x"), Generator("x", Var("customer")))
        assert not is_grouping(c)

    def test_grouping_translates_to_nest(self, translator):
        g = make_group_comprehension(
            key=Proj(Var("c"), "addr"),
            value=Var("c"),
            qualifiers=(Generator("c", Var("customer")),),
        )
        plan = translator.translate(g)
        assert isinstance(plan, Nest)
        assert plan.key == Proj(Var("c"), "addr")
        assert plan.aggregates[0][0] == "partition"

    def test_generator_over_grouping_binds_nest_var(self, translator):
        g = make_group_comprehension(
            key=Proj(Var("c"), "addr"),
            value=Var("c"),
            qualifiers=(Generator("c", Var("customer")),),
        )
        outer = comp(BagMonoid(), Var("grp"), Generator("grp", g))
        plan = translator.translate(outer)
        assert isinstance(plan, Reduce)
        assert isinstance(plan.child, Nest)
        assert plan.child.var == "grp"

    def test_multi_grouping_sets_flag(self, translator):
        from repro.monoid import Call

        g = make_group_comprehension(
            key=Call("tokenize", (Proj(Var("c"), "name"),)),
            value=Var("c"),
            qualifiers=(Generator("c", Var("customer")),),
            multi=True,
        )
        plan = translator.translate(g)
        assert getattr(plan, "multi", False) is True

    def test_unnest_of_group_partition(self, translator):
        g = make_group_comprehension(
            key=Proj(Var("c"), "addr"),
            value=Var("c"),
            qualifiers=(Generator("c", Var("customer")),),
        )
        outer = comp(
            BagMonoid(),
            Var("p"),
            Generator("grp", g),
            Generator("p", Proj(Var("grp"), "partition")),
        )
        plan = translator.translate(normalize(outer))
        assert isinstance(plan.child, Unnest)
