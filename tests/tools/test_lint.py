"""The engine self-lint: rule behavior, baseline mechanics, and the
self-check that the shipped source is clean.

The subprocess test is the CI contract: ``python -m tools.lint src/repro``
from the repo root must exit 0 against the committed baseline.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))

from tools.lint.framework import (  # noqa: E402
    Finding,
    lint_paths,
    load_baseline,
    save_baseline,
)
from tools.lint.rules import ALL_RULES  # noqa: E402


def lint_source(tmp_path, source, name="probe.py"):
    file = tmp_path / name
    file.write_text(textwrap.dedent(source))
    return lint_paths([file], ALL_RULES, root=tmp_path)


def codes(findings):
    return [f.code for f in findings]


class TestRules:
    def test_e101_nested_task_def(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def outer():
                def inner_task(x):
                    return x
                return inner_task
            """,
        )
        assert codes(findings) == ["E101"]
        assert "inner_task" in findings[0].message

    def test_e101_lambda_passed_to_pool_run(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def go(pool):
                return pool.run(lambda part: part, [(1,)])
            """,
        )
        assert codes(findings) == ["E101"]

    def test_e102_wall_clock_outside_allowlist(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import time
            from time import perf_counter

            def cost():
                return time.time() + perf_counter()
            """,
        )
        assert codes(findings) == ["E102", "E102"]

    def test_e102_allowlisted_file_is_exempt(self, tmp_path):
        target = tmp_path / "repro" / "engine"
        target.mkdir(parents=True)
        (target / "parallel.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n"
        )
        assert lint_paths([tmp_path], ALL_RULES, root=tmp_path) == []

    def test_e103_bare_pickle_loads(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            import pickle

            def decode(blob):
                return pickle.loads(blob)
            """,
        )
        assert codes(findings) == ["E103"]

    def test_e104_pool_attribute_write(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def hijack(pool):
                pool.workers = []
                pool.budget += 1
            """,
        )
        assert codes(findings) == ["E104", "E104"]

    def test_e104_assigning_the_pool_field_itself_is_fine(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            class Service:
                def __init__(self, pool):
                    self.pool = pool
            """,
        )
        assert findings == []

    def test_e000_syntax_error_is_reported_not_raised(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert codes(findings) == ["E000"]

    def test_clean_module_has_no_findings(self, tmp_path):
        findings = lint_source(
            tmp_path,
            """
            def fine_task(part):
                return sorted(part)
            """,
        )
        assert findings == []


class TestBaseline:
    def test_roundtrip_suppresses_known_findings(self, tmp_path):
        findings = lint_source(tmp_path, "import pickle\npickle.loads(b'')\n")
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, findings)
        known = load_baseline(baseline_file)
        assert [f for f in findings if f.fingerprint() not in known] == []

    def test_fingerprint_survives_line_moves(self):
        a = Finding("E103", "m", "pkg/mod.py", 10, "x = pickle.loads(b)")
        b = Finding("E103", "m", "pkg/mod.py", 99, "  x = pickle.loads(b)")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_the_line(self):
        a = Finding("E103", "m", "pkg/mod.py", 10, "x = pickle.loads(b)")
        b = Finding("E103", "m", "pkg/mod.py", 10, "y = pickle.loads(c)")
        assert a.fingerprint() != b.fingerprint()

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_committed_baseline_is_valid_json(self):
        data = json.loads(
            (REPO_ROOT / "tools" / "lint" / "baseline.json").read_text()
        )
        assert isinstance(data.get("fingerprints"), list)


class TestSelfLint:
    def test_engine_source_is_clean(self):
        result = subprocess.run(
            [sys.executable, "-m", "tools.lint", "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "ok: no new findings" in result.stdout

    def test_update_baseline_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\npickle.loads(b'')\n")
        baseline = tmp_path / "b.json"
        first = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.lint",
                str(bad),
                "--baseline",
                str(baseline),
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert first.returncode == 1
        assert "E103" in first.stdout
        update = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.lint",
                str(bad),
                "--baseline",
                str(baseline),
                "--update-baseline",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert update.returncode == 0
        second = subprocess.run(
            [
                sys.executable,
                "-m",
                "tools.lint",
                str(bad),
                "--baseline",
                str(baseline),
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert second.returncode == 0
        assert "1 baselined" in second.stdout
