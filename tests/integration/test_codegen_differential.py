"""Facade-level differential test: every query shape, both execution modes.

Fig. 2's Code Generator must be indistinguishable from the interpreting
executor on every query family the language supports.
"""

import pytest

from repro import CleanDB


def customers():
    return [
        {
            "name": f"client {i:02d}",
            "address": f"addr{i % 4}",
            "phone": f"{700 + i % 4}-{i:04d}",
            "nationkey": i % 3,
        }
        for i in range(24)
    ]


QUERIES = [
    "SELECT * FROM customer c",
    "SELECT c.name AS n FROM customer c WHERE c.nationkey > 0",
    "SELECT DISTINCT c.address FROM customer c",
    "SELECT c.address, count(c.name) AS cnt FROM customer c GROUP BY c.address",
    "SELECT * FROM customer c FD(c.address, c.nationkey)",
    "SELECT * FROM customer c FD(c.address, prefix(c.phone)) FD(c.address, c.nationkey)",
    "SELECT * FROM customer c DEDUP(exact, LD, 0.5, c.address)",
    "SELECT * FROM customer c DEDUP(token_filtering, LD, 0.8, c.name)",
    (
        "SELECT * FROM customer c FD(c.address, c.nationkey) "
        "DEDUP(exact, LD, 0.5, c.address)"
    ),
]


def run(query: str, use_codegen: bool):
    db = CleanDB(num_nodes=4, use_codegen=use_codegen, q=2)
    db.register_table("customer", customers())
    db.register_table("dictionary", ["client 01", "client 02"])
    result = db.execute(query)
    return {
        name: sorted(map(repr, rows)) for name, rows in result.branches.items()
    }


@pytest.mark.parametrize("query", QUERIES)
def test_codegen_equals_interpreter(query):
    assert run(query, False) == run(query, True)


def test_cluster_by_codegen_equals_interpreter():
    query = (
        "SELECT * FROM customer c, dictionary d "
        "CLUSTER BY(token_filtering, LD, 0.7, c.name)"
    )
    assert run(query, False) == run(query, True)
