"""Handle-based execution parity and store-invalidation regressions.

The partition store is a pure transport optimisation: dispatching handles
to worker-resident partitions must produce **byte-identical** output to
shipping the rows per task — which in turn is byte-identical to the serial
row path.  These tests pin that down on null-laden inputs (None keys, None
comparison values, missing attributes) for all three cleaning fast paths,
warm *and* cold, and prove the versioning contract: after a mutation
(``repair_dc``) bumps a table's version, stale handles must fail loudly and
new runs must see only the repaired rows.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fixtures import (
    WORKERS,
    dirty_lineitem_rows,
    nully_dedup_rows,
    nully_fd_rows,
    nully_orders_rows,
    psi_constraint,
    split_for,
)
from repro import CleanDB
from repro.cleaning.dedup import deduplicate, deduplicate_parallel
from repro.cleaning.denial import (
    check_dc,
    check_dc_parallel,
    check_fd,
    check_fd_parallel,
)
from repro.engine import Cluster, StaleHandleError

# Null-laden inputs: every attribute the operators touch goes through None
# (and, for dedup, missing-key) cases.
NULLY_FD = nully_fd_rows()
NULLY_ORDERS = nully_orders_rows()
NULLY_DEDUP = nully_dedup_rows()
PSI = psi_constraint()


def _row_fd(records, num_nodes=4):
    cluster = Cluster(num_nodes)
    ds = cluster.parallelize(records, name="lineitem")
    return repr(check_fd(ds, ["addr"], ["nation"]).collect())


class TestHandleParityNullLaden:
    """Handle-based == ship-per-task == serial row path, byte for byte."""

    def test_fd_parity_cold_and_warm(self):
        row = _row_fd(NULLY_FD)
        with Cluster(4, workers=WORKERS) as cluster:
            pool = cluster.pool
            pool.pin("table:t", 1, _split(NULLY_FD, cluster))
            for _ in range(2):  # cold, then warm on the same pin
                par = check_fd_parallel(
                    cluster, NULLY_FD, ["addr"], ["nation"], pinned=("table:t", 1)
                ).collect()
                assert repr(par) == row

    def test_fd_parity_without_pin(self):
        # Ad-hoc (unpinned) dispatch takes the same handle-based path.
        row = _row_fd(NULLY_FD)
        with Cluster(4, workers=WORKERS) as cluster:
            par = check_fd_parallel(cluster, NULLY_FD, ["addr"], ["nation"]).collect()
            assert repr(par) == row

    def test_dc_parity_cold_and_warm(self):
        row_cluster = Cluster(4)
        ds = row_cluster.parallelize(NULLY_ORDERS, name="lineitem")
        row = repr(check_dc(ds, PSI, strategy="banded").collect())
        with Cluster(4, workers=WORKERS) as cluster:
            pool = cluster.pool
            pool.pin("table:o", 1, _split(NULLY_ORDERS, cluster))
            cold = check_dc_parallel(
                cluster, NULLY_ORDERS, PSI, pinned=("table:o", 1)
            ).collect()
            bytes_after_cold = pool.bytes_shipped_total
            warm = check_dc_parallel(
                cluster, NULLY_ORDERS, PSI, pinned=("table:o", 1)
            ).collect()
            warm_bytes = pool.bytes_shipped_total - bytes_after_cold
            assert repr(cold) == row
            assert repr(warm) == row
            # The warm run reused the resident extraction + index.
            assert warm_bytes < bytes_after_cold

    def test_dc_metrics_identical_cold_and_warm(self):
        """Cache temperature may change measured transport, never the
        simulated clock or the pruning counters."""

        def run(cluster):
            check_dc_parallel(cluster, NULLY_ORDERS, PSI, pinned=("table:o", 1))
            return (
                cluster.metrics.simulated_time,
                cluster.metrics.comparisons,
                cluster.metrics.verified,
            )

        with Cluster(4, workers=WORKERS) as cluster:
            cluster.pool.pin("table:o", 1, _split(NULLY_ORDERS, cluster))
            cold = run(cluster)
            cluster.metrics.reset()
            warm = run(cluster)
        assert cold == warm

    def test_dedup_parity_cold_and_warm(self):
        row_cluster = Cluster(4)
        ds = row_cluster.parallelize(NULLY_DEDUP, name="input")
        row = repr(
            deduplicate(ds, ["name"], theta=0.4, block_on="city").collect()
        )
        with Cluster(4, workers=WORKERS) as cluster:
            cluster.pool.pin("table:d", 1, _split(NULLY_DEDUP, cluster))
            for _ in range(2):
                par = deduplicate_parallel(
                    cluster, NULLY_DEDUP, ["name"], theta=0.4, block_on="city",
                    pinned=("table:d", 1),
                ).collect()
                assert repr(par) == row

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.lists(
            st.fixed_dictionaries(
                {
                    "addr": st.sampled_from(["a", "b", None]),
                    "nation": st.sampled_from([0, 1, None]),
                }
            ),
            max_size=40,
        )
    )
    def test_fd_parity_property(self, rows):
        records = [{**r, "_rid": i} for i, r in enumerate(rows)]
        row = _row_fd(records, num_nodes=3)
        with Cluster(3, workers=WORKERS) as cluster:
            par = check_fd_parallel(cluster, records, ["addr"], ["nation"]).collect()
        assert repr(par) == row


_split = split_for


class TestVersionInvalidation:
    """Mutation bumps the table version; stale handles must not serve the
    pre-mutation rows."""

    @staticmethod
    def _dirty_rows():
        return dirty_lineitem_rows()

    def test_repair_dc_invalidates_stale_handles(self):
        rule = "t1.price < t2.price and t1.qty > t2.qty"
        db = CleanDB(num_nodes=4, execution="parallel", workers=WORKERS)
        try:
            db.register_table("lineitem", self._dirty_rows())
            pool = db.cluster.pool
            before = db.check_dc("lineitem", rule)
            assert before
            stale_refs = pool.pinned("table:lineitem", 1)
            assert stale_refs is not None

            report = db.repair_dc("lineitem", rule, violations=before)
            assert report.residual_violations == 0
            # The old version's partitions are gone from every worker: a
            # handle kept across the repair fails instead of serving old
            # rows.
            assert pool.pinned("table:lineitem", 1) is None
            with pytest.raises(StaleHandleError):
                pool.fetch(stale_refs)
            # A new check runs against the repaired (re-pinned) rows only.
            assert db.check_dc("lineitem", rule) == []
        finally:
            db.close()

    def test_reregistration_bumps_version_and_serves_new_rows(self):
        rule = "t1.price < t2.price and t1.qty > t2.qty"
        db = CleanDB(num_nodes=4, execution="parallel", workers=WORKERS)
        try:
            db.register_table("lineitem", self._dirty_rows())
            assert db.check_dc("lineitem", rule)  # warm the derived cache
            clean = [
                {"price": float(i), "qty": i // 20, "cat": "c0"} for i in range(200)
            ]
            db.register_table("lineitem", clean)
            assert db.check_dc("lineitem", rule) == []
        finally:
            db.close()

    def test_resize_drops_derived_cache(self):
        """Appending rows changes the record count: the next check must
        re-pin under the same identity AND drop the cached extraction/index
        — never probe a stale index against fresh partitions."""
        rule = "t1.price < t2.price and t1.qty > t2.qty"
        db = CleanDB(num_nodes=4, execution="parallel", workers=WORKERS)
        row_db = CleanDB(num_nodes=4)
        try:
            rows = self._dirty_rows()
            db.register_table("lineitem", rows)
            db.check_dc("lineitem", rule)  # warm the derived cache
            grown = db.table("lineitem") + [
                {"price": 500.0, "qty": 0, "cat": "c1", "_rid": 900},
                {"price": 0.5, "qty": 9, "cat": "c1", "_rid": 901},
            ]
            db.table("lineitem").extend(grown[-2:])
            row_db.register_table("lineitem", list(db.table("lineitem")))
            assert repr(db.check_dc("lineitem", rule)) == repr(
                row_db.check_dc("lineitem", rule)
            )
        finally:
            db.close()

    def test_refresh_table_makes_in_place_edits_visible(self):
        """Same-length in-place edits are snapshot-invisible by contract;
        refresh_table() is the coherence point that re-pins them."""
        rule = "t1.price < t2.price and t1.qty > t2.qty"
        db = CleanDB(num_nodes=4, execution="parallel", workers=WORKERS)
        try:
            db.register_table("lineitem", self._dirty_rows())
            before = db.check_dc("lineitem", rule)
            assert before
            for row in db.table("lineitem"):
                row["qty"] = 1  # repair every row in place
            db.refresh_table("lineitem")
            assert db.check_dc("lineitem", rule) == []
        finally:
            db.close()

    def test_query_path_sees_resized_table(self):
        """SQL queries share the fast paths' freshness contract: a
        length-changing mutation re-pins before the scan binds."""
        sql = "SELECT * FROM customer c FD(c.address, c.nation)"
        rows = [
            {"address": f"a{i % 4}", "nation": i % 2} for i in range(40)
        ]
        par = CleanDB(num_nodes=4, execution="parallel", workers=WORKERS)
        row = CleanDB(num_nodes=4)
        try:
            par.register_table("customer", rows)
            par.execute(sql)  # warm: table pinned, scan bound
            par.table("customer").append(
                {"address": "a0", "nation": 5, "_rid": 40}
            )
            row.register_table("customer", list(par.table("customer")))
            assert (
                sorted(map(repr, par.execute(sql).branches["fd1"]))
                == sorted(map(repr, row.execute(sql).branches["fd1"]))
            )
        finally:
            par.close()
            row.close()

    def test_pool_restart_repins_transparently(self):
        """close() kills the pool (and the store); the next parallel call
        re-pins under the same identity instead of failing."""
        db = CleanDB(num_nodes=4, execution="parallel", workers=WORKERS)
        try:
            db.register_table("lineitem", self._dirty_rows())
            first = db.check_fd("lineitem", ["cat"], ["qty"])
            db.close()
            second = db.check_fd("lineitem", ["cat"], ["qty"])
            assert repr(first) == repr(second)
        finally:
            db.close()


class TestDeltaFaults:
    """Fault injection on the ``append_rows``/``update_rows`` delta path."""

    RULE = "t1.price < t2.price and t1.qty > t2.qty"

    def test_worker_death_mid_delta_recovers_transparently(self):
        """A worker dying while a delta patch is in flight no longer costs
        the warm store: the dead worker's partitions rebuild from lineage,
        the lost patch tasks retry, and the delta still lands *as a delta*
        (``rows_delta`` recorded, new version adopted) — matching a cold
        oracle on the post-delta table."""
        db = CleanDB(num_nodes=4, execution="parallel", workers=WORKERS,
                     incremental=True)
        oracle = CleanDB(num_nodes=4)
        try:
            db.register_table("lineitem", dirty_lineitem_rows())
            db.check_dc("lineitem", self.RULE)  # pin + build resident state
            pool = db.cluster.pool
            assert pool.pinned("table:lineitem", 1) is not None
            pool._procs[0].terminate()  # crash a worker under the store
            pool._procs[0].join(timeout=5.0)
            db.append_rows(
                "lineitem", [{"price": 0.5, "qty": 9, "cat": "c1"}]
            )
            # The patch recovered and landed incrementally: the delta op
            # was recorded and the table's new version is resident.
            assert db.cluster.metrics.rows_delta > 0
            assert pool.pinned("table:lineitem", 1) is None
            assert pool.pinned("table:lineitem", 2) is not None
            oracle.register_table("lineitem", list(db.table("lineitem")))
            assert repr(db.check_dc("lineitem", self.RULE)) == repr(
                oracle.check_dc("lineitem", self.RULE)
            )
        finally:
            db.close()
            oracle.close()

    @pytest.mark.parametrize("execution", ("row", "vectorized", "parallel"))
    def test_refresh_table_drops_incremental_state(self, execution):
        """``refresh_table`` after an external in-place mutation must drop
        the maintained states and the rid index on every backend — they
        mirror rows the mutation changed behind their back, so serving
        from them would resurrect the pre-edit answer."""
        kwargs = dict(num_nodes=4, execution=execution, incremental=True)
        if execution == "parallel":
            kwargs["workers"] = WORKERS
        db = CleanDB(**kwargs)
        try:
            db.register_table("lineitem", dirty_lineitem_rows())
            assert db.check_dc("lineitem", self.RULE)  # build resident state
            assert "lineitem" in db._inc_tables
            db.update_rows("lineitem", {0: dict(db.table("lineitem")[0])})
            assert "lineitem" in db._rid_index
            for row in db.table("lineitem"):
                row["qty"] = 1  # repair in place, behind the mirror's back
            db.refresh_table("lineitem")
            assert "lineitem" not in db._inc_tables
            assert "lineitem" not in db._rid_index
            assert db.check_dc("lineitem", self.RULE) == []
        finally:
            db.close()

    def test_append_rows_invalidates_stale_handles(self):
        """A handle held across ``append_rows`` must fail loudly — the
        delta patch moves the pin to the new version and evicts the old."""
        db = CleanDB(num_nodes=4, execution="parallel", workers=WORKERS,
                     incremental=True)
        try:
            db.register_table("lineitem", dirty_lineitem_rows())
            db.check_dc("lineitem", self.RULE)
            pool = db.cluster.pool
            stale_refs = pool.pinned("table:lineitem", 1)
            assert stale_refs is not None
            db.append_rows(
                "lineitem", [{"price": 500.0, "qty": 0, "cat": "c0"}]
            )
            # The patch shipped one row, not the table.
            assert db.cluster.metrics.rows_delta == 1
            assert pool.pinned("table:lineitem", 1) is None
            assert pool.pinned("table:lineitem", 2) is not None
            with pytest.raises(StaleHandleError):
                pool.fetch(stale_refs)
        finally:
            db.close()
