"""Unified three-way backend parity: row vs vectorized vs parallel.

Every supported pipeline — algebra plans, language-level CleanM queries, and
the System-level cleaning operations — runs through all three execution
backends over every storage format that can feed it (CSV, JSON, binary
columnar), and must produce identical normalized results.  The parallel
backend additionally guarantees *byte-identical ordered* output for the
FD-check and dedup pipelines (the determinism tests at the bottom), which
pins down nondeterministic merge ordering the normalized comparisons would
hide.

The worker count is configurable via ``REPRO_TEST_WORKERS`` (CI runs the
suite with 2); anything >= 2 exercises true multi-process execution.
"""

import pytest

from fixtures import WORKERS, dedup_clean_records, fd_clean_records
from repro import CleanDB
from repro.algebra import Join, Nest, Reduce, Scan, Select
from repro.baselines import CleanDBSystem
from repro.cleaning.dedup import deduplicate, deduplicate_parallel
from repro.cleaning.denial import check_fd, check_fd_parallel
from repro.engine import Cluster
from repro.engine.dataset import Dataset
from repro.monoid import (
    BagMonoid,
    BinOp,
    Const,
    CountMonoid,
    Proj,
    SetMonoid,
    SumMonoid,
    Var,
)
from repro.physical import Executor, PhysicalConfig
from repro.sources import Catalog, Field, Schema, write_records

BACKENDS = ("row", "vectorized", "parallel")
FORMATS = ("csv", "json", "columnar")

ORDERS = [
    {"okey": i, "cust": f"c{i % 7}", "price": float(100 + 13 * (i % 11)), "qty": i % 5 + 1}
    for i in range(60)
]
CUSTOMERS = [
    {"id": f"c{i}", "nation": f"n{i % 3}", "segment": "retail" if i % 2 else "corp"}
    for i in range(7)
]
ORDERS_SCHEMA = Schema(
    (Field("okey", "int"), Field("cust", "str"), Field("price", "float"), Field("qty", "int"))
)
CUSTOMERS_SCHEMA = Schema(
    (Field("id", "str"), Field("nation", "str"), Field("segment", "str"))
)

FD_RECORDS = fd_clean_records()
DEDUP_RECORDS = dedup_clean_records()


def _materialized_tables(tmp_path, fmt):
    """Round-trip both tables through a storage format, returning records."""
    catalog = Catalog()
    for name, records, schema in (
        ("orders", ORDERS, ORDERS_SCHEMA),
        ("customers", CUSTOMERS, CUSTOMERS_SCHEMA),
    ):
        path = tmp_path / f"{name}.{fmt}"
        write_records(path, records, fmt, schema)
        catalog.register(name, path, fmt, schema)
    return {name: catalog.load(name) for name in ("orders", "customers")}


def _run_plan(tables, plan, execution):
    cluster = Cluster(num_nodes=4, workers=WORKERS if execution == "parallel" else None)
    ex = Executor(cluster, dict(tables), config=PhysicalConfig(execution=execution))
    try:
        result = ex.execute(plan)
        return _normalize(result), cluster
    finally:
        cluster.shutdown()


def _normalize(result):
    if isinstance(result, Dataset):
        return sorted(map(repr, result.collect()))
    if isinstance(result, dict):
        return {k: _normalize(v) for k, v in result.items()}
    return result


def _canon(value):
    """A canonical, order-insensitive-for-sets rendering of a result value.

    Sets and dicts compare by *content*; their iteration order is an
    implementation detail, and crossing a process boundary can legitimately
    change it (pickle rebuilds hash tables with a different insertion
    sequence).  Plain ``repr`` comparison would flag equal frozensets as
    different, so parity is asserted on this canonical form instead.
    """
    if isinstance(value, dict):
        items = sorted(
            ((repr(k), _canon(v)) for k, v in value.items()), key=lambda kv: kv[0]
        )
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "set{" + ", ".join(sorted(_canon(v) for v in value)) + "}"
    if isinstance(value, tuple):
        return "(" + ", ".join(_canon(v) for v in value) + ")"
    if isinstance(value, list):
        return "[" + ", ".join(_canon(v) for v in value) + "]"
    return repr(value)


FILTER_PLAN = Select(
    Scan("orders", "o"),
    BinOp(
        "and",
        BinOp(">", Proj(Var("o"), "price"), Const(120.0)),
        BinOp("<", Proj(Var("o"), "qty"), Const(5)),
    ),
)
JOIN_PLAN = Join(
    Select(Scan("orders", "o"), BinOp(">", Proj(Var("o"), "price"), Const(110.0))),
    Scan("customers", "c"),
    left_keys=(Proj(Var("o"), "cust"),),
    right_keys=(Proj(Var("c"), "id"),),
)
NEST_PLAN = Nest(
    Scan("orders", "o"),
    key=Proj(Var("o"), "cust"),
    aggregates=(
        ("total", SumMonoid(), Proj(Var("o"), "price")),
        ("n", CountMonoid(), Var("o")),
    ),
    group_predicate=BinOp(">", Proj(Var("g"), "n"), Const(2)),
    var="g",
)
PLANS = {
    "filter": FILTER_PLAN,
    "join": JOIN_PLAN,
    "nest": NEST_PLAN,
    "reduce_sum": Reduce(Scan("orders", "o"), SumMonoid(), Proj(Var("o"), "price")),
    "reduce_count": Reduce(Scan("orders", "o"), CountMonoid(), Var("o")),
    "reduce_bag": Reduce(Scan("orders", "o"), BagMonoid(), Proj(Var("o"), "cust")),
    "reduce_set": Reduce(Scan("orders", "o"), SetMonoid(), Proj(Var("o"), "cust")),
}


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_plan_parity_across_backends_and_formats(tmp_path, fmt, plan_name):
    """Every supported plan shape: three backends, one answer."""
    plan = PLANS[plan_name]
    tables = _materialized_tables(tmp_path, fmt)
    results = {}
    clusters = {}
    for backend in BACKENDS:
        results[backend], clusters[backend] = _run_plan(tables, plan, backend)
    assert results["row"] == results["vectorized"] == results["parallel"]
    # The non-row runs actually exercised their backends.
    assert clusters["vectorized"].metrics.batches_processed > 0
    assert clusters["parallel"].metrics.measured_time > 0.0
    assert clusters["row"].metrics.measured_time == 0.0


LANGUAGE_QUERIES = {
    "fd": "SELECT * FROM customer c FD(c.address, c.phone)",
    "fd_computed": "SELECT * FROM customer c FD(c.address, prefix(c.phone))",
    "dedup": "SELECT * FROM customer c DEDUP(exact, LD, 0.7, c.address)",
    "multi_operator": (
        "SELECT * FROM customer c "
        "FD(c.address, c.phone) DEDUP(exact, LD, 0.7, c.address)"
    ),
}


@pytest.mark.parametrize("query_name", sorted(LANGUAGE_QUERIES))
def test_language_level_parity(query_name):
    """Whole CleanM queries agree branch-for-branch across backends."""
    sql = LANGUAGE_QUERIES[query_name]
    rows = [
        {
            "name": f"cust{i}",
            "address": f"addr{i % 6}",
            "phone": f"{i % 6}{i % 3}-1234",
        }
        for i in range(50)
    ]
    outputs = {}
    for backend in BACKENDS:
        db = CleanDB(num_nodes=4, execution=backend, workers=WORKERS)
        db.register_table("customer", rows)
        try:
            # Canonical form, not raw repr: set-valued aggregates (FD's
            # `partition` frozensets) keep their contents but may change
            # iteration order after crossing a worker process boundary.
            outputs[backend] = {
                name: sorted(_canon(row) for row in branch_rows)
                for name, branch_rows in db.execute(sql).branches.items()
            }
        finally:
            db.close()
    assert outputs["row"] == outputs["vectorized"] == outputs["parallel"]


@pytest.mark.parametrize("fmt", FORMATS)
def test_system_fd_parity(fmt):
    """System-level FD check: identical violations on all three backends."""
    results = {
        backend: CleanDBSystem(
            num_nodes=4, execution=backend, workers=WORKERS
        ).check_fd(FD_RECORDS, ["addr"], ["nation"], fmt=fmt)
        for backend in BACKENDS
    }
    assert all(r.ok for r in results.values())
    counts = {r.output_count for r in results.values()}
    assert len(counts) == 1 and counts != {0}


@pytest.mark.parametrize("fmt", FORMATS)
def test_system_dc_parity(fmt):
    """System-level banded DC check: identical violations and identical
    candidate/examined counters on all three backends."""
    from repro.cleaning.denial import DenialConstraint, TuplePredicate

    psi = DenialConstraint(
        predicates=(
            TuplePredicate("price", "<", "price"),
            TuplePredicate("qty", ">", "qty"),
        ),
    )
    results = {
        backend: CleanDBSystem(
            num_nodes=4, execution=backend, workers=WORKERS
        ).check_dc(ORDERS, psi, fmt=fmt)
        for backend in BACKENDS
    }
    assert all(r.ok for r in results.values())
    counts = {r.output_count for r in results.values()}
    assert len(counts) == 1 and counts != {0}
    assert len({r.comparisons for r in results.values()}) == 1
    assert len({r.verified for r in results.values()}) == 1


@pytest.mark.parametrize("fmt", FORMATS)
def test_system_dedup_parity(fmt):
    """System-level dedup: identical pairs and comparison counts."""
    results = {
        backend: CleanDBSystem(
            num_nodes=4, execution=backend, workers=WORKERS
        ).deduplicate(
            DEDUP_RECORDS,
            ["pages", "authors"],
            block_on=("journal", "title"),
            theta=0.3,
            fmt=fmt,
        )
        for backend in BACKENDS
    }
    assert all(r.ok for r in results.values())
    assert len({r.output_count for r in results.values()}) == 1
    assert len({r.comparisons for r in results.values()}) == 1


class TestDeterminism:
    """Parallel output must be *byte-identical and ordered* like the serial
    row backend — catching nondeterministic merge ordering that normalized
    (sorted) comparisons cannot see."""

    def test_fd_pipeline_byte_identical(self):
        row_cluster = Cluster(4)
        ds = row_cluster.parallelize(FD_RECORDS, fmt="csv", name="lineitem")
        row = check_fd(ds, ["addr"], ["nation"]).collect()
        with Cluster(4, workers=WORKERS) as par_cluster:
            par = check_fd_parallel(
                par_cluster, FD_RECORDS, ["addr"], ["nation"], fmt="csv"
            ).collect()
            assert par_cluster.metrics.measured_time > 0.0
        assert repr(row) == repr(par)

    def test_fd_pipeline_stable_across_runs(self):
        outputs = []
        for _ in range(2):
            with Cluster(4, workers=WORKERS) as cluster:
                outputs.append(
                    repr(
                        check_fd_parallel(
                            cluster, FD_RECORDS, ["addr"], ["nation"]
                        ).collect()
                    )
                )
        assert outputs[0] == outputs[1]

    def test_dedup_pipeline_byte_identical(self):
        row_cluster = Cluster(4)
        ds = row_cluster.parallelize(DEDUP_RECORDS, fmt="json", name="input")
        row = deduplicate(
            ds, ["pages", "authors"], theta=0.3, block_on=("journal", "title")
        ).collect()
        with Cluster(4, workers=WORKERS) as par_cluster:
            par = deduplicate_parallel(
                par_cluster,
                DEDUP_RECORDS,
                ["pages", "authors"],
                theta=0.3,
                block_on=("journal", "title"),
                fmt="json",
            ).collect()
        assert repr(row) == repr(par)

    def test_dc_pipeline_byte_identical(self):
        from repro.cleaning.denial import (
            DenialConstraint,
            TuplePredicate,
            check_dc,
            check_dc_parallel,
        )

        psi = DenialConstraint(
            predicates=(
                TuplePredicate("price", "<", "price"),
                TuplePredicate("qty", ">", "qty"),
            ),
        )
        row_cluster = Cluster(4)
        ds = row_cluster.parallelize(ORDERS, fmt="csv", name="lineitem")
        row = check_dc(ds, psi, strategy="banded").collect()
        with Cluster(4, workers=WORKERS) as par_cluster:
            par = check_dc_parallel(par_cluster, ORDERS, psi, fmt="csv").collect()
            assert par_cluster.metrics.measured_time > 0.0
        assert repr(row) == repr(par)

    def test_dedup_without_rids_byte_identical(self):
        records = [{"name": f"x{i % 5}", "city": f"c{i % 2}"} for i in range(24)]
        row_cluster = Cluster(3)
        row = deduplicate(
            row_cluster.parallelize(records, name="input"),
            ["name"],
            theta=0.9,
            block_on="city",
        ).collect()
        with Cluster(3, workers=WORKERS) as par_cluster:
            par = deduplicate_parallel(
                par_cluster, records, ["name"], theta=0.9, block_on="city"
            ).collect()
        assert repr(row) == repr(par)
