"""End-to-end scenarios: the paper's running example and file-backed flows."""

import pytest

from repro import CleanDB, PhysicalConfig
from repro.datasets import generate_customer, generate_dblp
from repro.evaluation import score_pairs, score_term_repairs
from repro.sources import Catalog, Schema, write_records


class TestRunningExample:
    """The motivating example of §1/§4.4: FD + DEDUP + CLUSTER BY together."""

    def make_db(self):
        db = CleanDB(num_nodes=4, q=2)
        customers = [
            {"name": "stella g", "address": "rue lac 1", "phone": "021-111", "nationkey": 1},
            {"name": "stela g", "address": "rue lac 1", "phone": "027-222", "nationkey": 1},
            {"name": "manos k", "address": "rue gare 2", "phone": "022-111", "nationkey": 2},
        ]
        db.register_table("customer", customers)
        db.register_table("dictionary", ["stella g", "manos k"])
        return db

    def test_full_query_runs_and_detects_everything(self):
        db = self.make_db()
        result = db.execute(
            "SELECT c.name, c.address, * FROM customer c, dictionary d "
            "FD(c.address, prefix(c.phone)) "
            "DEDUP(exact, LD, 0.7, c.address) "
            "CLUSTER BY(token_filtering, LD, 0.7, c.name)"
        )
        # FD: 'rue lac 1' maps to two phone prefixes.
        assert {v["key"] for v in result.branch("fd1")} == {"rue lac 1"}
        # DEDUP: the two rue-lac customers are duplicates.
        assert len(result.branch("dedup")) == 1
        # CLUSTER BY: the misspelled name is repaired.
        assert ("stela g", "stella g") in result.branch("cluster_by")

    def test_explain_shows_three_levels(self):
        db = self.make_db()
        text = db.explain(
            "SELECT * FROM customer c, dictionary d "
            "FD(c.address, prefix(c.phone)) DEDUP(exact, LD, 0.7, c.address)"
        )
        assert "coalesced groupings" in text


class TestFileBackedPipeline:
    def test_csv_to_cleandb(self, tmp_path):
        schema = Schema.of(name="str", address="str", phone="str", nationkey="int")
        rows = [
            {"name": "a", "address": "x", "phone": "1-1", "nationkey": 1},
            {"name": "b", "address": "x", "phone": "2-1", "nationkey": 2},
        ]
        path = tmp_path / "customer.csv"
        write_records(path, rows, "csv", schema)
        catalog = Catalog()
        catalog.register("customer", path, "csv", schema)

        db = CleanDB(num_nodes=2)
        db.register_table("customer", catalog.load("customer"), fmt="csv")
        result = db.execute("SELECT * FROM customer c FD(c.address, c.nationkey)")
        assert {v["key"] for v in result.branch("fd1")} == {"x"}

    @pytest.mark.parametrize("fmt", ["json", "columnar", "xml"])
    def test_other_formats_round_trip_through_cleandb(self, tmp_path, fmt):
        schema = Schema.of(name="str", address="str", phone="str", nationkey="int")
        rows = [
            {"name": "a", "address": "x", "phone": "1-1", "nationkey": 1},
            {"name": "b", "address": "x", "phone": "2-1", "nationkey": 2},
        ]
        path = tmp_path / f"customer.{fmt}"
        write_records(path, rows, fmt, schema)
        catalog = Catalog()
        catalog.register("customer", path, fmt, schema)
        loaded = catalog.load("customer")
        db = CleanDB(num_nodes=2)
        db.register_table("customer", loaded, fmt=fmt)
        result = db.execute("SELECT * FROM customer c FD(c.address, c.nationkey)")
        assert len(result.branch("fd1")) == 1


class TestAccuracyEndToEnd:
    def test_customer_dedup_recovers_ground_truth(self):
        from repro.baselines import CleanDBSystem
        from repro.cleaning import deduplicate
        from repro.engine import Cluster

        data = generate_customer(num_customers=80, max_duplicates=4, edit_rate=0.1, seed=11)
        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(data.records)
        pairs = deduplicate(
            ds, ["name", "phone"], block_on="custkey", theta=0.55
        ).collect()
        report = score_pairs(
            [(p.left_id, p.right_id) for p in pairs], data.duplicate_pairs
        )
        assert report.precision == 1.0
        assert report.recall > 0.8

    def test_dblp_term_validation_accuracy(self):
        from repro.cleaning import validate_terms
        from repro.datasets.dblp import author_occurrences
        from repro.engine import Cluster

        data = generate_dblp(num_publications=150, num_authors=60, seed=13)
        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(author_occurrences(data.records))
        repairs = validate_terms(ds, data.dictionary, theta=0.75, q=2).collect()
        report = score_term_repairs(repairs, data.dirty_names)
        assert report.precision > 0.9
        assert report.recall > 0.8


class TestBudgetedEndToEnd:
    def test_budget_exceeded_propagates_from_facade(self):
        from repro.errors import BudgetExceededError

        db = CleanDB(num_nodes=2, budget=5.0)
        db.register_table("customer", [{"a": i} for i in range(100)])
        with pytest.raises(BudgetExceededError):
            db.execute("SELECT * FROM customer c")

    def test_theta_config_cartesian_still_correct(self):
        db = CleanDB(num_nodes=2, config=PhysicalConfig(theta="cartesian"))
        db.register_table("customer", [{"a": 1, "address": "x", "nationkey": 1}])
        result = db.execute("SELECT * FROM customer c")
        assert len(result.branch("query")) == 1
