"""General denial constraints expressed as vanilla-SQL self-joins (§4.4).

"The general category of denial constraints is expressible using vanilla
SQL, thus CleanM reuses SQL syntax to express them" — a DC with inequality
predicates becomes a self-join query, lowered to the configured theta-join
strategy.
"""

import pytest

from repro import CleanDB, PhysicalConfig
from repro.errors import BudgetExceededError

RULE_PSI_SQL = """
SELECT t1.price, t2.price AS other_price
FROM lineitem t1, lineitem t2
WHERE t1.price < t2.price AND t1.discount > t2.discount AND t1.price < 5
"""


def rows():
    return [{"price": float(i), "discount": ((7 * i) % 5) / 10} for i in range(20)]


def expected_violations():
    data = rows()
    out = set()
    for t1 in data:
        for t2 in data:
            if (
                t1["price"] < t2["price"]
                and t1["discount"] > t2["discount"]
                and t1["price"] < 5
            ):
                out.add((t1["price"], t2["price"]))
    return out


class TestDCViaSQL:
    def test_matrix_strategy_matches_nested_loop(self):
        db = CleanDB(num_nodes=4)
        db.register_table("lineitem", rows())
        result = db.execute(RULE_PSI_SQL)
        found = {(r["price"], r["other_price"]) for r in result.branch("query")}
        assert found == expected_violations()

    def test_cartesian_strategy_same_answer(self):
        db = CleanDB(num_nodes=4, config=PhysicalConfig(theta="cartesian"))
        db.register_table("lineitem", rows())
        result = db.execute(RULE_PSI_SQL)
        found = {(r["price"], r["other_price"]) for r in result.branch("query")}
        assert found == expected_violations()

    def test_cartesian_strategy_costs_more(self):
        db1 = CleanDB(num_nodes=4)
        db1.register_table("lineitem", rows())
        t_matrix = db1.execute(RULE_PSI_SQL).metrics["simulated_time"]

        db2 = CleanDB(num_nodes=4, config=PhysicalConfig(theta="cartesian"))
        db2.register_table("lineitem", rows())
        t_cartesian = db2.execute(RULE_PSI_SQL).metrics["simulated_time"]
        assert t_matrix < t_cartesian

    def test_cartesian_blows_budget_on_larger_input(self):
        big = [{"price": float(i), "discount": (i % 7) / 10} for i in range(400)]
        db = CleanDB(
            num_nodes=4, budget=250_000, config=PhysicalConfig(theta="cartesian")
        )
        db.register_table("lineitem", big)
        with pytest.raises(BudgetExceededError):
            db.execute(RULE_PSI_SQL)
        # The matrix strategy handles the same input within the same budget.
        db2 = CleanDB(num_nodes=4, budget=250_000)
        db2.register_table("lineitem", big)
        assert db2.execute(RULE_PSI_SQL).branch("query")
