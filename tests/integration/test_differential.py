"""Differential tests: the three execution paths must agree.

The same cleaning task can run through (1) the compiled pipeline
(parse → comprehension → algebra → physical), (2) the reference
comprehension interpreter, and (3) the hand-specialized cleaning library.
Any divergence is a translation bug.
"""

import pytest

from repro import CleanDB
from repro.cleaning import check_fd, deduplicate, validate_terms
from repro.core.rewriter import rewrite_query
from repro.core.parser import parse
from repro.engine import Cluster
from repro.monoid import evaluate_comprehension
from repro.physical.functions import DEFAULT_FUNCTIONS


def customers():
    rows = []
    for i in range(30):
        rows.append(
            {
                "name": f"client {i:02d}",
                "address": f"addr{i % 4}",
                "phone": f"{700 + i % 4}-{i:04d}",
                # i%4 and i%3 are coprime periods, so every address sees
                # several nationkey values -> every address violates the FD.
                "nationkey": i % 3,
                "_rid": i,
            }
        )
    return rows


class TestFDPaths:
    QUERY = "SELECT * FROM customer c FD(c.address, c.nationkey)"

    def test_compiled_vs_library(self):
        db = CleanDB(num_nodes=4)
        db.register_table("customer", customers())
        compiled = db.execute(self.QUERY).branch("fd1")
        compiled_keys = {v["key"] for v in compiled}

        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(customers())
        library = check_fd(ds, ["address"], ["nationkey"]).collect()
        library_keys = {v.key for v in library}
        assert compiled_keys == library_keys

    def test_compiled_vs_reference_interpreter(self):
        db = CleanDB(num_nodes=4)
        db.register_table("customer", customers())
        compiled_keys = {v["key"] for v in db.execute(self.QUERY).branch("fd1")}

        [branch] = rewrite_query(parse(self.QUERY))
        funcs = dict(DEFAULT_FUNCTIONS)
        reference = evaluate_comprehension(
            branch.comprehension, {"customer": customers()}, funcs
        )
        reference_keys = {g["key"] for g in reference}
        assert compiled_keys == reference_keys


class TestDedupPaths:
    QUERY = "SELECT * FROM customer c DEDUP(exact, LD, 0.5, c.address)"

    def test_compiled_vs_library(self):
        db = CleanDB(num_nodes=4)
        db.register_table("customer", customers())
        compiled = db.execute(self.QUERY).branch("dedup")
        compiled_pairs = {
            (min(p["p1"]["_rid"], p["p2"]["_rid"]), max(p["p1"]["_rid"], p["p2"]["_rid"]))
            for p in compiled
        }

        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(customers())
        library = deduplicate(ds, ["address"], theta=0.5, block_on="address").collect()
        library_pairs = {(p.left_id, p.right_id) for p in library}
        assert compiled_pairs == library_pairs


class TestTermValidationPaths:
    def test_compiled_vs_library(self):
        dirty = ["client 00", "clientt 01", "client 02", "zzzz yyyy"]
        dictionary = [f"client {i:02d}" for i in range(5)]

        db = CleanDB(num_nodes=4, q=2)
        db.register_table("customer", [{"name": t} for t in dirty])
        db.register_table("dictionary", dictionary)
        compiled = db.execute(
            "SELECT * FROM customer c, dictionary d "
            "CLUSTER BY(token_filtering, LD, 0.8, c.name)"
        ).branch("cluster_by")
        compiled_terms = {t for t, _ in compiled}

        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(dirty)
        library = validate_terms(ds, dictionary, theta=0.8, q=2).collect()
        library_terms = {r.term for r in library}
        assert compiled_terms == library_terms
        assert "clientt 01" in compiled_terms
        assert "zzzz yyyy" not in compiled_terms


class TestGroupingStrategiesDifferential:
    @pytest.mark.parametrize("grouping", ["aggregate", "sort", "hash"])
    def test_library_fd_same_result_each_strategy(self, grouping):
        cluster = Cluster(num_nodes=4)
        ds = cluster.parallelize(customers())
        violations = check_fd(
            ds, ["address"], ["nationkey"], grouping=grouping
        ).collect()
        assert {v.key for v in violations} == {f"addr{i}" for i in range(4)}
