"""Unit tests for accuracy scoring."""

import pytest

from repro.cleaning import TermRepair
from repro.evaluation import AccuracyReport, format_table, score_pairs, score_term_repairs, speedup


class TestTermScoring:
    def test_perfect_repairs(self):
        truth = {"jhon": "john", "mry": "mary"}
        repairs = [TermRepair("jhon", ("john",)), TermRepair("mry", ("mary",))]
        report = score_term_repairs(repairs, truth)
        assert report.precision == 1.0 and report.recall == 1.0
        assert report.f_score == 1.0

    def test_wrong_best_suggestion_hurts_both(self):
        truth = {"jhon": "john"}
        repairs = [TermRepair("jhon", ("joan", "john"))]
        report = score_term_repairs(repairs, truth)
        assert report.precision == 0.0 and report.recall == 0.0

    def test_missing_repair_hurts_recall_only(self):
        truth = {"jhon": "john", "mry": "mary"}
        repairs = [TermRepair("jhon", ("john",))]
        report = score_term_repairs(repairs, truth)
        assert report.precision == 1.0
        assert report.recall == 0.5

    def test_spurious_repair_hurts_precision(self):
        truth = {"jhon": "john"}
        repairs = [
            TermRepair("jhon", ("john",)),
            TermRepair("clean", ("something",)),
        ]
        report = score_term_repairs(repairs, truth)
        assert report.precision == 0.5 and report.recall == 1.0

    def test_empty_everything(self):
        report = score_term_repairs([], {})
        assert report.recall == 1.0

    def test_f_score_zero_when_empty(self):
        assert AccuracyReport(0.0, 0.0).f_score == 0.0

    def test_as_row_rounding(self):
        row = AccuracyReport(1 / 3, 2 / 3).as_row()
        assert row["precision"] == pytest.approx(0.3333, abs=1e-4)


class TestPairScoring:
    def test_perfect(self):
        truth = {(1, 2), (3, 4)}
        report = score_pairs([(2, 1), (3, 4)], truth)
        assert report.precision == 1.0 and report.recall == 1.0

    def test_partial(self):
        truth = {(1, 2), (3, 4)}
        report = score_pairs([(1, 2), (5, 6)], truth)
        assert report.precision == 0.5 and report.recall == 0.5

    def test_empty_found(self):
        report = score_pairs([], {(1, 2)})
        assert report.precision == 0.0 and report.recall == 0.0


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table("T", [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert len({len(l) for l in lines[1:]}) <= 2

    def test_format_table_none_as_dash(self):
        text = format_table("T", [{"a": None}])
        assert "-" in text.splitlines()[-1]

    def test_empty_rows(self):
        assert "(no rows)" in format_table("T", [])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")
