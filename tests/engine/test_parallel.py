"""Unit tests for the real worker pool: ordering, errors, clean aborts.

The error-path tests are the load-bearing ones: a worker raising mid-task
must surface the *original* exception on the driver (never a pickling
error), and a budget blow-up must abort only the offending query — the
pool and everything pinned on it stay resident for other callers, and the
owning session's close() is what releases the processes.
"""

import os
import threading

import pytest

from repro.baselines import CleanDBSystem
from repro.engine import Cluster, ShipLog, WorkerPool, WorkerTaskError, begin_transport_scope
from repro.engine.parallel import ABANDONED_LIMIT
from repro.errors import BudgetExceededError, ReproError


# --------------------------------------------------------------------- #
# Module-level task functions (tasks must be importable in workers).
# --------------------------------------------------------------------- #

def _square(x):
    return x * x


def _sum_part(part):
    return sum(part)


class _CustomError(ReproError):
    pass


def _raise_value_error(x):
    raise ValueError(f"boom on {x}")


def _square_unless_five(x):
    if x == 5:
        raise ValueError(f"boom on {x}")
    return x * x


def _raise_custom(x):
    raise _CustomError(f"custom boom on {x}")


class _UnpicklableError(Exception):
    """An exception that cannot cross the process boundary."""

    def __init__(self, message):
        super().__init__(message)
        self.callback = lambda: None  # lambdas do not pickle


def _raise_unpicklable(x):
    raise _UnpicklableError(f"opaque boom on {x}")


@pytest.fixture
def pool():
    p = WorkerPool(2)
    yield p
    p.shutdown()


class TestWorkerPool:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_results_in_submission_order(self, pool):
        results = pool.run(_square, [(i,) for i in range(20)])
        assert results == [i * i for i in range(20)]

    def test_partition_tasks(self, pool):
        parts = [[1, 2, 3], [], [10, 20]]
        assert pool.run(_sum_part, [(p,) for p in parts]) == [6, 0, 30]

    def test_original_exception_surfaces(self, pool):
        with pytest.raises(ValueError, match="boom on 3") as info:
            pool.run(_raise_value_error, [(3,)])
        # The worker traceback travels along for diagnosis.
        assert "_raise_value_error" in info.value.worker_traceback

    def test_library_exception_surfaces_as_itself(self, pool):
        with pytest.raises(_CustomError, match="custom boom"):
            pool.run(_raise_custom, [(1,)])

    def test_unpicklable_exception_degrades_to_worker_task_error(self, pool):
        with pytest.raises(WorkerTaskError, match="opaque boom on 7") as info:
            pool.run(_raise_unpicklable, [(7,)])
        assert info.value.exc_type == "_UnpicklableError"
        assert "_raise_unpicklable" in info.value.worker_traceback

    def test_mixed_batch_surfaces_the_failing_task(self, pool):
        # One run() whose batch mixes succeeding and failing tasks: the
        # failing task's own error surfaces, not a misattributed one.
        with pytest.raises(ValueError, match="boom on 5"):
            pool.run(_square_unless_five, [(i,) for i in range(8)])

    def test_pool_survives_task_failure(self, pool):
        with pytest.raises(ValueError):
            pool.run(_raise_value_error, [(1,)])
        assert pool.run(_square, [(4,)]) == [16]

    def test_shutdown_idempotent_and_closes(self, pool):
        pool.shutdown()
        pool.shutdown()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.run(_square, [(1,)])

    def test_context_manager_shuts_down(self):
        with WorkerPool(2) as p:
            assert p.run(_square, [(3,)]) == [9]
        assert p.closed

    def test_wall_clock_observed(self, pool):
        pool.run(_square, [(i,) for i in range(4)])
        assert pool.last_wall_seconds > 0.0
        assert pool.wall_seconds_total >= pool.last_wall_seconds
        assert pool.tasks_dispatched == 4


class TestClusterPoolLifecycle:
    def test_pool_is_lazy(self):
        cluster = Cluster(num_nodes=4, workers=2)
        assert not cluster.has_pool
        cluster.pool.run(_square, [(2,)])
        assert cluster.has_pool
        cluster.shutdown()
        assert not cluster.has_pool

    def test_budget_exceeded_keeps_pool_resident(self):
        """A budget blow-up is query-scoped: the error surfaces but the pool
        (and everything pinned on it) survives for the next query — on a
        shared serving pool a teardown would destroy every other tenant's
        state.  Explicit shutdown still releases the processes."""
        cluster = Cluster(num_nodes=2, workers=2, budget=10.0)
        assert cluster.pool.run(_square, [(3,)]) == [9]
        refs = cluster.pool.pin("table:t", 1, [[1, 2], [3]])
        with pytest.raises(BudgetExceededError):
            cluster.record_op("big", [100.0, 0.0])
        assert cluster.has_pool
        assert cluster.pool.pinned("table:t", 1) == refs
        assert cluster.pool.run(_square, [(4,)]) == [16]
        cluster.shutdown()
        assert not cluster.has_pool

    def test_cluster_context_manager(self):
        with Cluster(num_nodes=2, workers=2) as cluster:
            cluster.pool.run(_square, [(1,)])
        assert not cluster.has_pool


class TestShutdownHygiene:
    def test_shutdown_reaps_worker_processes(self):
        """shutdown() must leave no zombies: every worker pid is joined
        (reaped), so signalling it afterwards says "no such process"."""
        pool = WorkerPool(2)
        pool.run(_square, [(1,)])
        pids = [proc.pid for proc in pool._procs]
        pool.shutdown()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_repeated_cycles_leak_no_fds(self):
        """Create/shutdown cycles must not accumulate queue pipe fds."""

        def fd_count():
            return len(os.listdir("/proc/self/fd"))

        # One warm-up cycle absorbs import-time and allocator one-offs.
        with WorkerPool(2) as p:
            p.run(_square, [(1,)])
        before = fd_count()
        for _ in range(5):
            with WorkerPool(2) as p:
                p.run(_square, [(1,)])
        assert fd_count() <= before + 4


class TestAbortHygiene:
    def test_mid_dispatch_abort_leaves_pool_clean(self, pool):
        """An abort between dispatch and reply (Ctrl-C mid-batch) abandons
        the in-flight tasks; their late replies are dropped by the router
        and the next caller on the same pool gets only its own replies."""
        pool.run(_square, [(1,), (2,)])  # register the function worker-side
        real_ship = pool._ship
        shipped = {"n": 0}

        def flaky_ship(worker, command, nbytes, call):
            shipped["n"] += 1
            if shipped["n"] == 3:  # two tasks already in flight
                raise KeyboardInterrupt
            real_ship(worker, command, nbytes, call)

        pool._ship = flaky_ship
        try:
            with pytest.raises(KeyboardInterrupt):
                pool.run(_square, [(i,) for i in range(8)])
        finally:
            pool._ship = real_ship
        # The interrupted call's replies were routed to the abandoned set,
        # not buffered: fresh runs see clean, correctly-attributed replies.
        for _ in range(3):
            assert pool.run(_square, [(i,) for i in range(8)]) == [
                i * i for i in range(8)
            ]
        assert not pool._reply_buffers

    def test_abandoned_set_is_bounded(self, pool):
        """The abandoned-task set is an LRU with a hard cap — a long-lived
        serving pool cannot grow it without bound however many queries
        abort mid-flight."""
        with pool._reply_cond:
            for task_id in range(10 ** 6, 10 ** 6 + 3 * ABANDONED_LIMIT):
                pool._abandon_locked(task_id)
            assert len(pool._abandoned) == ABANDONED_LIMIT
        assert pool.run(_square, [(3,)]) == [9]


class TestConcurrentCallers:
    def test_threads_interleave_with_correct_results(self, pool):
        """Two driver threads share one pool; every run returns its own
        results in submission order despite interleaved dispatch."""
        results = {}
        errors = []

        def drive(tag, base):
            try:
                out = [
                    pool.run(_square, [(base + i,) for i in range(8)])
                    for _ in range(5)
                ]
                results[tag] = out
            except Exception as exc:  # pragma: no cover - diagnostic path
                errors.append(exc)

        threads = [
            threading.Thread(target=drive, args=(tag, base))
            for tag, base in (("a", 0), ("b", 100))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results["a"] == [[i * i for i in range(8)]] * 5
        assert results["b"] == [[(100 + i) ** 2 for i in range(8)]] * 5

    def test_transport_scopes_are_per_caller(self, pool):
        """Interleaved callers each read only their own transport: a
        ShipLog window covers the caller's ships and replies, nothing from
        the sibling thread hammering the same pool."""
        pool.run(_square, [(1,), (2,)])  # register the function on every worker
        barrier = threading.Barrier(2)
        taken = {}

        def drive(tag):
            begin_transport_scope()
            log = ShipLog(pool)
            barrier.wait()
            pool.run(_square, [(i,) for i in range(10)])
            taken[tag] = log.take()

        threads = [
            threading.Thread(target=drive, args=(tag,)) for tag in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # 10 handle-sized payloads out + 10 replies back, per caller —
        # exactly what a solo run ships, with zero cross-attribution.
        assert taken["a"]["ship_count"] == taken["b"]["ship_count"] == 20
        assert taken["a"]["bytes_shipped"] > 0
        assert taken["a"]["bytes_shipped"] == taken["b"]["bytes_shipped"]

    def test_error_in_one_thread_leaves_other_unharmed(self, pool):
        barrier = threading.Barrier(2)
        outcome = {}

        def good():
            barrier.wait()
            outcome["good"] = pool.run(_square, [(i,) for i in range(20)])

        def bad():
            barrier.wait()
            try:
                pool.run(_raise_value_error, [(i,) for i in range(20)])
            except ValueError as exc:
                outcome["bad"] = str(exc)

        threads = [threading.Thread(target=good), threading.Thread(target=bad)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcome["good"] == [i * i for i in range(20)]
        assert "boom on" in outcome["bad"]
        # The pool is still healthy for the next caller.
        assert pool.run(_square, [(6,)]) == [36]


class TestSystemBudgetAbort:
    def test_parallel_fd_budget_exceeded_aborts_cleanly(self):
        """A parallel System run that blows the budget reports the same
        status as a serial one and leaves no worker processes behind."""
        records = [
            {"addr": f"a{i % 5}", "nation": i % 3, "_rid": i} for i in range(400)
        ]
        system = CleanDBSystem(num_nodes=4, budget=1.0, execution="parallel", workers=2)
        result = system.check_fd(records, ["addr"], ["nation"])
        assert result.status == "budget_exceeded"
        assert result.output_count == 0

    def test_parallel_matches_row_status_when_ok(self):
        records = [
            {"addr": f"a{i % 5}", "nation": i % 3, "_rid": i} for i in range(60)
        ]
        row = CleanDBSystem(num_nodes=4).check_fd(records, ["addr"], ["nation"])
        par = CleanDBSystem(num_nodes=4, execution="parallel", workers=2).check_fd(
            records, ["addr"], ["nation"]
        )
        assert row.status == par.status == "ok"
        assert row.output_count == par.output_count
