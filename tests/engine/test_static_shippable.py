"""Static shippability probes and labeled broken-blob diagnostics.

The parallel lowering used to prove every input picklable by running
``pickle.dumps`` over the whole table; the static probes here replace
that with an O(sample) type-walk.  The safety net for what sampling can
miss is the labeled ``_BrokenBlob``: when a blob does explode in a
worker, the error must *name* the pin or task function that produced it,
not just a function id.
"""

import pytest

from repro.engine import WorkerPool
from repro.engine.parallel import (
    is_module_level_callable,
    rows_statically_shippable,
)


def _module_func(x):
    return x + 1


class _Plain:
    """Picklable by the normal instance protocol."""

    def __init__(self, v):
        self.v = v


def _explode():
    raise RuntimeError("poisoned payload")


class _Bomb:
    """Pickles fine on the driver; raises when unpickled in a worker."""

    def __reduce__(self):
        return (_explode, ())


class _BombFunc:
    """A callable whose blob explodes on load — a broken task function."""

    def __call__(self, part):
        return part

    def __reduce__(self):
        return (_explode, ())


class TestIsModuleLevelCallable:
    def test_module_function(self):
        assert is_module_level_callable(_module_func)

    def test_lambda(self):
        assert not is_module_level_callable(lambda x: x)

    def test_nested_function(self):
        def inner(x):
            return x

        assert not is_module_level_callable(inner)

    def test_non_callable_attributes(self):
        assert not is_module_level_callable(_Plain(1))


class TestRowsStaticallyShippable:
    def test_scalar_rows(self):
        rows = [{"a": 1, "b": "x", "c": None, "d": 1.5, "e": True}] * 10
        assert rows_statically_shippable(rows)

    def test_nested_containers(self):
        rows = [{"a": [1, (2, 3)], "b": {"k"}, "c": frozenset({4})}]
        assert rows_statically_shippable(rows)

    def test_lambda_value_rejected(self):
        assert not rows_statically_shippable([{"f": lambda: None}])

    def test_exotic_but_picklable_value_accepted(self):
        # Unknown types fall back to a per-value pickle probe.
        assert rows_statically_shippable([{"obj": _Plain(7)}])

    def test_sampling_bounds_the_probe(self):
        rows = [{"a": 1} for _ in range(300)]
        rows.append({"f": lambda: None})  # beyond the 256-row sample
        assert rows_statically_shippable(rows, sample=256)
        assert not rows_statically_shippable(rows, sample=400)


@pytest.fixture
def pool():
    p = WorkerPool(2)
    yield p
    p.shutdown()


class TestPinnedVersions:
    def test_reports_resident_versions(self, pool):
        pool.pin("tbl:t", 1, [[1, 2], [3]])
        assert pool.pinned_versions("tbl:t") == [1]
        pool.pin("tbl:t", 2, [[1], [2]])
        assert 2 in pool.pinned_versions("tbl:t")

    def test_unknown_name_is_empty(self, pool):
        assert pool.pinned_versions("tbl:ghost") == []


class TestBrokenBlobLabels:
    def test_broken_pin_names_the_partition(self, pool):
        refs = pool.pin("tbl:bomb", 3, [[_Bomb()]])
        with pytest.raises(Exception) as exc:
            pool.run(_module_func, [(refs[0],)])
        message = str(exc.value)
        assert "failed to unpickle in the worker" in message
        assert "pinned partition 'tbl:bomb' v3 part 0" in message
        assert "poisoned payload" in message

    def test_broken_task_function_names_the_function(self, pool):
        with pytest.raises(Exception) as exc:
            pool.run(_BombFunc(), [(1,)])
        message = str(exc.value)
        assert "failed to unpickle in the worker" in message
        assert "task function" in message
        assert "poisoned payload" in message
