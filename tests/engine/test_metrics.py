"""Unit tests for the cost model and metrics collector."""

import pytest

from repro.engine import CostModel, MetricsCollector, OpMetrics


class TestCostModel:
    def test_defaults_order_sort_cheaper_than_hash(self):
        cm = CostModel()
        assert cm.sort_shuffle_factor < cm.hash_shuffle_factor

    def test_columnar_scan_cheaper_than_csv(self):
        cm = CostModel()
        assert cm.scan_unit("columnar") < cm.scan_unit("csv")

    def test_scan_unit_per_format_ordering(self):
        cm = CostModel()
        assert cm.scan_unit("csv") < cm.scan_unit("json") < cm.scan_unit("xml")

    def test_memory_scan_free(self):
        assert CostModel().scan_unit("memory") == 0.0

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            CostModel().scan_unit("avro")


class TestOpMetrics:
    def test_simulated_time_is_max_node_plus_shuffle(self):
        op = OpMetrics("x", [1.0, 5.0, 2.0], shuffle_cost=10.0)
        assert op.simulated_time == 15.0

    def test_total_work(self):
        assert OpMetrics("x", [1.0, 2.0]).total_work == 3.0

    def test_balance_uniform(self):
        assert OpMetrics("x", [2.0, 2.0, 2.0]).balance == 1.0

    def test_balance_skewed(self):
        op = OpMetrics("x", [10.0, 0.0, 0.0, 0.0])
        assert op.balance == pytest.approx(0.25)

    def test_balance_empty(self):
        assert OpMetrics("x", []).balance == 1.0


class TestMetricsCollector:
    def test_accumulates_ops(self):
        mc = MetricsCollector()
        mc.record(OpMetrics("a", [1.0], shuffle_cost=2.0))
        mc.record(OpMetrics("b", [3.0]))
        assert mc.simulated_time == 6.0
        assert mc.total_work == 4.0

    def test_phase_time_by_prefix(self):
        mc = MetricsCollector()
        mc.record(OpMetrics("grouping:token", [5.0]))
        mc.record(OpMetrics("similarity:dedup", [7.0]))
        assert mc.phase_time("grouping") == 5.0
        assert mc.phase_time("similarity") == 7.0

    def test_reset(self):
        mc = MetricsCollector()
        mc.record(OpMetrics("a", [1.0]))
        mc.comparisons = 9
        mc.reset()
        assert mc.simulated_time == 0.0
        assert mc.comparisons == 0

    def test_summary_keys(self):
        mc = MetricsCollector()
        summary = mc.summary()
        assert set(summary) == {
            "simulated_time", "measured_time", "shuffled_records",
            "total_work", "comparisons", "verified", "pruning_ratio",
            "num_ops", "batches", "bytes_shipped", "ship_count",
            "rows_delta", "retries", "degraded_ops",
        }

    def test_measured_time_sums_wall_seconds(self):
        mc = MetricsCollector()
        mc.record(OpMetrics("a", [1.0], wall_seconds=0.25))
        mc.record(OpMetrics("b", [1.0]))  # simulated-only stage
        mc.record(OpMetrics("c", [1.0], wall_seconds=0.5))
        assert mc.measured_time == pytest.approx(0.75)
        # Measured time never leaks into the simulated clock.
        assert mc.simulated_time == 3.0
