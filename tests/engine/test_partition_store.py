"""Unit tests for the worker-resident partition store.

The load-bearing contracts: data pinned once is referenced by handle ever
after (no row re-shipping), task functions register once per worker instead
of riding in every payload, eviction and version bumps make stale handles
*fail* rather than serve old rows, and a worker death heals in place — the
dead worker's partitions rebuild from lineage onto the replacement and
lost tasks retry, with ``invalidate_store()`` reserved for rebuild failure.
"""

import os

import pytest

from repro.engine import (
    Cluster,
    FaultPlan,
    StaleHandleError,
    StoreRef,
    WorkerPool,
    WorkerTaskError,
)
from repro.engine.shuffle import exchange, exchange_resident


# --------------------------------------------------------------------- #
# Module-level task functions (tasks must be importable in workers).
# --------------------------------------------------------------------- #

def _double(xs):
    return [x * 2 for x in xs]


def _concat(a, b):
    return a + b


def _lookup(index, xs):
    return [index["base"] + x for x in xs]


def _die(_):
    os._exit(17)


def _sum_part(part):
    return sum(part)


@pytest.fixture
def pool():
    p = WorkerPool(2)
    yield p
    p.shutdown()


class TestPinAndHandles:
    def test_pin_returns_counted_handles(self, pool):
        refs = pool.pin("t", 1, [[1, 2, 3], [4, 5], [6]])
        assert [r.part for r in refs] == [0, 1, 2]
        assert [r.count for r in refs] == [3, 2, 1]
        assert pool.pinned("t", 1) == refs

    def test_tasks_resolve_handles_worker_side(self, pool):
        refs = pool.pin("t", 1, [[1, 2], [3]])
        assert pool.run(_double, [(r,) for r in refs]) == [[2, 4], [6]]

    def test_store_as_keeps_results_resident(self, pool):
        refs = pool.pin("t", 1, [[1, 2], [3]])
        out = pool.run(_double, [(r,) for r in refs], store_as=("d", 7))
        assert all(isinstance(r, StoreRef) for r in out)
        assert [r.count for r in out] == [2, 1]
        # Chained stage: handle output feeds handle input, no driver data.
        chained = pool.run(_concat, [(out[0], refs[0])])
        assert chained == [[2, 4, 1, 2]]
        assert pool.fetch(out) == [[2, 4], [6]]

    def test_broadcast_resolves_on_every_worker(self, pool):
        refs = pool.pin("t", 1, [[1], [2], [3], [4]])
        idx = pool.broadcast("idx", 1, {"base": 100})
        assert pool.run(_lookup, [(idx, r) for r in refs]) == [
            [101], [102], [103], [104],
        ]

    def test_handles_ship_instead_of_rows(self, pool):
        big = [
            [{"payload": f"x{p}-{i}" * 100, "i": i} for i in range(50)]
            for p in range(4)
        ]
        refs = pool.pin("big", 1, big)
        pinned_bytes = pool.bytes_shipped_total
        before = pool.bytes_shipped_total
        pool.run(_sum_len, [(r,) for r in refs])
        handle_bytes = pool.bytes_shipped_total - before
        # Dispatching against handles costs a tiny fraction of re-shipping.
        assert handle_bytes < pinned_bytes / 20


def _sum_len(part):
    return len(part)


def _add_const(c, x):
    return c + x


class TestPinPartialFailure:
    def test_failed_pin_strands_nothing(self, pool):
        """A mid-loop serialization failure must evict what already
        shipped: no pin registry entry, no accounted bytes, and the worker
        stores hold nothing under the name."""
        parts = [[1, 2], [3, 4], [lambda: None]]  # tail does not pickle
        with pytest.raises(Exception):
            pool.pin("t", 1, parts)
        assert pool.pinned("t", 1) is None
        assert pool.pinned_nbytes("t") == 0
        # A handle fabricated for the shipped prefix must fail to resolve —
        # the partitions were rolled back worker-side, not just unlisted.
        with pytest.raises(StaleHandleError):
            pool.run(_double, [(StoreRef("t", 1, 0, 2),)])

    def test_name_is_reusable_after_failed_pin(self, pool):
        with pytest.raises(Exception):
            pool.pin("t", 1, [[1], [lambda: None]])
        refs = pool.pin("t", 1, [[5], [6]])
        assert pool.run(_double, [(r,) for r in refs]) == [[10], [12]]

    def test_failed_broadcast_strands_nothing(self, pool):
        with pytest.raises(Exception):
            pool.broadcast("idx", 1, {"cb": lambda: None})
        assert pool.pinned("idx", 1) is None
        assert pool.pinned_nbytes("idx") == 0


class TestFunctionRegistryBound:
    def test_registry_stays_bounded(self, pool):
        """Re-created closures/partials must not accumulate forever: the
        registry is keyed by the function's pickle and capped."""
        from functools import partial

        from repro.engine.parallel import FUNC_REGISTRY_LIMIT

        for i in range(FUNC_REGISTRY_LIMIT + 20):
            assert pool.run(partial(_add_const, i), [(1,)]) == [i + 1]
        assert len(pool._func_ids) <= FUNC_REGISTRY_LIMIT

    def test_recreated_equivalent_partial_shares_one_slot(self, pool):
        from functools import partial

        pool.run(partial(_add_const, 7), [(1,)])
        before = len(pool._func_ids)
        for _ in range(10):
            assert pool.run(partial(_add_const, 7), [(3,)]) == [10]
        assert len(pool._func_ids) == before

    def test_evicted_function_reregisters_transparently(self, pool):
        from functools import partial

        from repro.engine.parallel import FUNC_REGISTRY_LIMIT

        first = partial(_add_const, 0)
        pool.run(first, [(1,)])
        for i in range(1, FUNC_REGISTRY_LIMIT + 5):
            pool.run(partial(_add_const, i), [(1,)])
        # ``first`` fell off the LRU long ago; using it again just works.
        assert pool.run(first, [(5,)]) == [5]


class TestEvictionAndVersions:
    def test_stale_handle_raises_after_evict(self, pool):
        refs = pool.pin("t", 3, [[1], [2]])
        pool.evict("t", 3)
        assert pool.pinned("t", 3) is None
        with pytest.raises(StaleHandleError, match="evicted or invalidated"):
            pool.fetch(refs)

    def test_evict_one_version_keeps_others(self, pool):
        old = pool.pin("t", 1, [[1], [2]])
        new = pool.pin("t", 2, [[10], [20]])
        pool.evict("t", 1)
        with pytest.raises(StaleHandleError):
            pool.fetch(old)
        assert pool.fetch(new) == [[10], [20]]

    def test_derived_cache_is_bounded_lru(self, pool):
        from repro.engine.parallel import DERIVED_CACHE_LIMIT

        refs = pool.pin("t", 1, [[1], [2]])
        stored = {}
        for i in range(DERIVED_CACHE_LIMIT + 4):
            out = pool.run(_double, [(r,) for r in refs], store_as=("drv", i))
            stored[i] = out
            pool.register_derived(
                ("dc", "t", 1, f"rule{i}"),
                {"entry_refs": out, "store_names": [("drv", i)]},
            )
        # The oldest entries fell off the cap, and their worker-resident
        # partitions were evicted with them.
        assert pool.derived(("dc", "t", 1, "rule0")) is None
        with pytest.raises(StaleHandleError):
            pool.fetch(stored[0])
        # The newest entries survive, data intact.
        last = DERIVED_CACHE_LIMIT + 3
        assert pool.derived(("dc", "t", 1, f"rule{last}")) is not None
        assert pool.fetch(stored[last]) == [[2], [4]]

    def test_evict_name_drops_derived_state(self, pool):
        pool.pin("t", 1, [[1], [2]])
        derived = pool.run(_double, [(r,) for r in pool.pinned("t", 1)],
                           store_as=("t:derived", 9))
        pool.register_derived(
            ("dc", "t", 1, "rule"),
            {"entry_refs": derived, "store_names": [("t:derived", 9)]},
        )
        pool.evict("t", 1)
        assert pool.derived(("dc", "t", 1, "rule")) is None
        with pytest.raises(StaleHandleError):
            pool.fetch(derived)


class TestFunctionRegistry:
    def test_function_ships_once_per_worker_not_per_task(self, pool):
        refs = pool.pin("t", 1, [[1], [2], [3], [4]])
        pool.run(_double, [(r,) for r in refs])
        first_funcs = len(pool._func_ids)
        before_bytes = pool.bytes_shipped_total
        before_ships = pool.ship_count_total
        pool.run(_double, [(r,) for r in refs])
        assert len(pool._func_ids) == first_funcs  # no re-registration
        # Second batch: 4 task payloads out + 4 replies back, nothing else.
        assert pool.ship_count_total - before_ships == 8
        # And the payloads are handle-sized.
        assert pool.bytes_shipped_total - before_bytes < 2000


class TestResidentExchange:
    def test_matches_serial_exchange_byte_for_byte(self, pool):
        cluster = Cluster(4)
        data = [
            [(f"k{i % 5}", (i, None if i % 3 else "v")) for i in range(j, 30, 3)]
            for j in range(3)
        ]
        serial, s_moved, s_cost = exchange(cluster, data, 4, kind="local")
        refs = pool.pin("in", 1, data)
        out_refs, moved, cost = exchange_resident(
            cluster, pool, refs, 4, kind="local", store_as=("out", 1)
        )
        assert pool.fetch(out_refs) == serial
        assert (moved, cost) == (s_moved, s_cost)

    def test_sort_routing_rejected(self, pool):
        cluster = Cluster(2)
        refs = pool.pin("in", 1, [[("a", 1)]])
        with pytest.raises(ValueError, match="hash"):
            exchange_resident(cluster, pool, refs, 2, kind="sort")


class TestWorkerDeath:
    def test_death_exhausts_retries_but_pins_survive(self, pool):
        """A task that kills its worker on *every* attempt burns the whole
        retry budget — but the store heals each time: pins stay registered
        and fetchable because each replacement worker was rebuilt from
        lineage before the failing retry reached it."""
        refs = pool.pin("t", 1, [[1], [2]])
        with pytest.raises(WorkerTaskError) as info:
            pool.run(_die, [(0,)])
        assert info.value.exc_type == "RetriesExhausted"
        assert pool.pinned("t", 1) == refs
        assert pool.fetch(refs) == [[1], [2]]

    def test_pool_recovers_with_replacement_worker(self, pool):
        with pytest.raises(WorkerTaskError):
            pool.run(_die, [(0,), (1,)])
        # Dead workers were replaced; a fresh pin + run works.
        refs = pool.pin("t", 2, [[5], [6]])
        assert pool.run(_double, [(r,) for r in refs]) == [[10], [12]]

    def test_single_death_is_transparent(self):
        """One crash mid-batch: the batch still returns the right answer,
        the retry counter records the recovery, and pins survive because
        the replacement was rebuilt from lineage — a gen-0-only fault plan
        leaves the replacement healthy."""
        with WorkerPool(2, fault_plan=FaultPlan().kill_before(worker=1, nth=1)) as pool:
            refs = pool.pin("t", 1, [[1, 2], [3, 4]])
            out = pool.run(_double, [(r,) for r in refs])
            assert out == [[2, 4], [6, 8]]
            assert pool.retries_total >= 1
            assert pool.pinned("t", 1) == refs
            assert pool.fetch(refs) == [[1, 2], [3, 4]]
