"""Fault injection and self-healing: every fault kind must be survivable.

The contract under test is the tentpole of the self-healing pool: a worker
lost mid-batch (killed, hung, dropping replies, or corrupting them) is
replaced, its partitions are rebuilt from lineage, and the lost tasks are
re-dispatched — the caller sees correct results, never ``WorkerDied``, and
*other* partitions' pins stay resident throughout.  ``invalidate_store``
must not fire on this happy recovery path; only an exhausted retry budget
surfaces, as ``WorkerTaskError(exc_type="RetriesExhausted")``.

Faults come from the deterministic :class:`FaultPlan` harness, so every
test here replays the same failure schedule on every run.
"""

import pickle

import pytest

from repro.engine import FaultPlan, FaultSpec, WorkerPool, WorkerTaskError


# --------------------------------------------------------------------- #
# Module-level task functions (tasks must be importable in workers).
# --------------------------------------------------------------------- #

def _double(x):
    return x * 2


def _sum_part(part):
    return sum(part)


def _raise_value_error(x):
    raise ValueError(f"boom on {x}")


def _forbid_invalidate(pool):
    """Turn ``invalidate_store`` into an assertion failure for this pool."""

    def _fail():  # pragma: no cover - only runs when the contract breaks
        raise AssertionError("invalidate_store() fired on the recovery path")

    pool.invalidate_store = _fail


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(worker=0, kind="explode", nth=1)

    def test_nth_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(worker=0, kind="drop", nth=0)

    def test_negative_worker_and_delay_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(worker=-1, kind="drop", nth=1)
        with pytest.raises(ValueError):
            FaultSpec(worker=0, kind="delay", nth=1, seconds=-0.1)

    def test_builders_are_immutable(self):
        base = FaultPlan()
        grown = base.kill_before(worker=0, nth=1).delay(worker=1, nth=2, seconds=1.0)
        assert not base
        assert len(grown.specs) == 2
        assert grown.specs[0].kind == "kill_before"

    def test_for_worker_filters_by_worker_and_gen(self):
        plan = (
            FaultPlan()
            .kill_before(worker=0, nth=1)
            .drop(worker=1, nth=3)
            .corrupt(worker=0, nth=2, gen=1)
        )
        assert set(plan.for_worker(0, gen=0)) == {1}
        assert set(plan.for_worker(0, gen=1)) == {2}
        assert set(plan.for_worker(1, gen=0)) == {3}
        assert plan.for_worker(2, gen=0) == {}

    def test_first_spec_wins_on_duplicate_ordinal(self):
        plan = FaultPlan().drop(worker=0, nth=1).corrupt(worker=0, nth=1)
        assert plan.for_worker(0, gen=0)[1].kind == "drop"

    def test_plan_pickles(self):
        plan = FaultPlan().kill_after(worker=1, nth=4)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestKillRecovery:
    def test_kill_before_is_transparent(self):
        plan = FaultPlan().kill_before(worker=1, nth=1)
        with WorkerPool(2, fault_plan=plan) as pool:
            _forbid_invalidate(pool)
            refs = pool.pin("t", 1, [[1, 2], [3, 4]])
            assert pool.run(_double, [(i,) for i in range(6)]) == [
                i * 2 for i in range(6)
            ]
            assert pool.retries_total >= 1
            # Lineage rebuilt the dead worker's pins onto the replacement.
            assert pool.pinned("t", 1) == refs
            assert pool.fetch(refs) == [[1, 2], [3, 4]]

    def test_kill_after_rebuilds_stored_stage(self):
        # The worker dies after computing but before replying, taking its
        # store_as partition with it; the stage lineage re-runs the task.
        plan = FaultPlan().kill_after(worker=0, nth=1)
        with WorkerPool(2, fault_plan=plan) as pool:
            _forbid_invalidate(pool)
            refs = pool.run(
                _sum_part, [([1, 2],), ([3, 4],)], store_as=("stage", 7)
            )
            assert pool.fetch(refs) == [3, 7]

    def test_only_dead_workers_partitions_rebuild(self):
        plan = FaultPlan().kill_before(worker=1, nth=1)
        with WorkerPool(2, fault_plan=plan) as pool:
            refs = pool.pin("t", 1, [[10], [20], [30], [40]])
            pool.run(_double, [(1,)], parts=[1])  # trips the fault on worker 1
            # Worker 0's partitions (parts 0 and 2) were never reshipped:
            # the same refs still resolve, and fetch round-trips everything.
            assert pool.pinned("t", 1) == refs
            assert pool.fetch(refs) == [[10], [20], [30], [40]]

    def test_retries_exhausted_when_every_generation_dies(self):
        plan = FaultPlan()
        for gen in range(4):  # initial process + every retry's replacement
            plan = plan.kill_before(worker=0, nth=1, gen=gen)
        with WorkerPool(2, fault_plan=plan, retry_backoff=0.0) as pool:
            with pytest.raises(WorkerTaskError, match="still lost") as info:
                pool.run(_double, [(1,)], parts=[0])
            assert info.value.exc_type == "RetriesExhausted"
            # The pool survives its own retry exhaustion.
            assert pool.run(_double, [(5,)], parts=[0]) == [10]


class TestReplyFaultRecovery:
    def test_corrupt_reply_is_retried(self):
        plan = FaultPlan().corrupt(worker=0, nth=1)
        with WorkerPool(2, fault_plan=plan) as pool:
            _forbid_invalidate(pool)
            assert pool.run(_double, [(3,)], parts=[0]) == [6]
            assert pool.retries_total == 1

    def test_dropped_reply_trips_watchdog(self):
        plan = FaultPlan().drop(worker=1, nth=1)
        with WorkerPool(2, fault_plan=plan, task_deadline=0.3) as pool:
            _forbid_invalidate(pool)
            refs = pool.pin("t", 1, [[1], [2]])
            assert pool.run(_double, [(4,)], parts=[1]) == [8]
            assert pool.retries_total >= 1
            assert pool.fetch(refs) == [[1], [2]]

    def test_hung_worker_is_replaced(self):
        plan = FaultPlan().delay(worker=0, nth=1, seconds=30.0)
        with WorkerPool(2, fault_plan=plan, task_deadline=0.3) as pool:
            _forbid_invalidate(pool)
            assert pool.run(_double, [(2,)], parts=[0]) == [4]
            assert pool.retries_total >= 1

    def test_deterministic_error_is_never_retried(self):
        with WorkerPool(2) as pool:
            with pytest.raises(ValueError, match="boom on 9"):
                pool.run(_raise_value_error, [(9,)])
            assert pool.retries_total == 0


class TestLineageKinds:
    def test_broadcast_survives_worker_death(self):
        plan = FaultPlan().kill_before(worker=1, nth=1)
        with WorkerPool(2, fault_plan=plan) as pool:
            _forbid_invalidate(pool)
            ref = pool.broadcast("side", 1, {"k": 99})
            assert pool.run(_double, [(1,)], parts=[1]) == [2]
            # The broadcast object is resident on the replacement too.
            assert pool.fetch([ref]) == [{"k": 99}]

    def test_eviction_removes_lineage(self):
        # An evicted pin must not be resurrected by recovery.
        plan = FaultPlan().kill_before(worker=1, nth=1)
        with WorkerPool(2, fault_plan=plan) as pool:
            pool.pin("gone", 1, [[1], [2]])
            pool.evict("gone", 1)
            keep = pool.pin("keep", 1, [[5], [6]])
            pool.run(_double, [(1,)], parts=[1])
            assert pool.pinned("gone", 1) is None
            assert pool.fetch(keep) == [[5], [6]]
