"""Unit tests for the partitioning strategies."""

import pytest

from repro.engine import (
    HashPartitioner,
    RangePartitioner,
    RoundRobinPartitioner,
    make_partitioner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_int_passthrough_non_negative(self):
        assert stable_hash(42) == 42
        assert stable_hash(-1) >= 0

    def test_different_values_usually_differ(self):
        values = {stable_hash(f"key{i}") for i in range(100)}
        assert len(values) > 90


class TestHashPartitioner:
    def test_in_range(self):
        p = HashPartitioner(8)
        assert all(0 <= p.partition(f"k{i}") < 8 for i in range(100))

    def test_same_key_same_partition(self):
        p = HashPartitioner(4)
        assert p.partition("x") == p.partition("x")

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestRoundRobinPartitioner:
    def test_even_spread(self):
        p = RoundRobinPartitioner(3)
        targets = [p.partition(None) for _ in range(9)]
        assert targets == [0, 1, 2, 0, 1, 2, 0, 1, 2]


class TestRangePartitioner:
    def test_routes_by_order(self):
        p = RangePartitioner(4, key_sample=list(range(100)))
        assert p.partition(0) <= p.partition(50) <= p.partition(99)

    def test_all_partitions_used_for_uniform_keys(self):
        p = RangePartitioner(4, key_sample=list(range(1000)))
        used = {p.partition(k) for k in range(1000)}
        assert used == {0, 1, 2, 3}

    def test_hot_key_lands_in_single_partition(self):
        # A single dominant key -> range partitioning sends every copy to
        # one partition: this is the skew sensitivity §8.3 describes.
        sample = [7] * 90 + list(range(10))
        p = RangePartitioner(4, sample)
        targets = {p.partition(7) for _ in range(50)}
        assert len(targets) == 1

    def test_empty_sample(self):
        p = RangePartitioner(4, key_sample=[])
        assert p.partition("anything") == 0

    def test_mixed_type_keys_do_not_crash(self):
        p = RangePartitioner(3, key_sample=[1, "a", 2, "b"])
        for key in (1, "a", 3.5, "zz"):
            assert 0 <= p.partition(key) < 3


class TestFactory:
    @pytest.mark.parametrize("kind", ["hash", "range", "roundrobin"])
    def test_known_kinds(self, kind):
        assert make_partitioner(kind, 4, key_sample=[1, 2, 3]) is not None

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_partitioner("consistent", 4)
