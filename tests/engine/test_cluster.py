"""Unit tests for Cluster: budgets, accounting, and node placement."""

import pytest

from repro.engine import Cluster, CostModel
from repro.errors import BudgetExceededError


class TestClusterBasics:
    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            Cluster(num_nodes=0)

    def test_node_round_robin(self):
        c = Cluster(num_nodes=3)
        assert [c.node_of(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_spread_over_nodes(self):
        c = Cluster(num_nodes=2)
        assert c.spread_over_nodes([1.0, 2.0, 4.0]) == [5.0, 2.0]

    def test_default_parallelism(self):
        assert Cluster(num_nodes=7).default_parallelism == 7


class TestWorkers:
    def test_workers_clamped_to_num_nodes_with_warning(self):
        with pytest.warns(UserWarning, match="clamping"):
            c = Cluster(num_nodes=2, workers=8)
        assert c.workers == 2

    def test_workers_within_num_nodes_accepted_silently(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            c = Cluster(num_nodes=4, workers=3)
        assert c.workers == 3

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            Cluster(num_nodes=4, workers=0)
        with pytest.raises(ValueError):
            Cluster(num_nodes=4, workers=-2)

    def test_default_is_simulated_only(self):
        c = Cluster(num_nodes=4)
        assert c.workers is None
        assert not c.has_pool

    def test_pool_size_defaults_when_unset(self):
        c = Cluster(num_nodes=1)
        try:
            # Even with no explicit workers, a requested pool is clamped to
            # the simulated cluster size.
            assert c.pool.workers == 1
        finally:
            c.shutdown()


class TestBudget:
    def test_budget_exceeded_raises_with_amounts(self):
        c = Cluster(num_nodes=2, budget=10.0)
        with pytest.raises(BudgetExceededError) as info:
            c.record_op("big", [100.0, 0.0])
        assert info.value.spent > info.value.budget == 10.0

    def test_within_budget_ok(self):
        c = Cluster(num_nodes=2, budget=1000.0)
        c.record_op("small", [1.0, 1.0])
        assert c.metrics.simulated_time == 1.0

    def test_budget_is_cumulative(self):
        c = Cluster(num_nodes=1, budget=10.0)
        c.record_op("a", [6.0])
        with pytest.raises(BudgetExceededError):
            c.record_op("b", [6.0])


class TestScanCosts:
    def test_format_scan_cost_applied(self):
        data = [{"a": i} for i in range(100)]
        times = {}
        for fmt in ("csv", "columnar"):
            c = Cluster(num_nodes=2)
            c.parallelize(data, fmt=fmt)
            times[fmt] = c.metrics.simulated_time
        assert times["columnar"] < times["csv"]

    def test_charge_comparisons(self):
        c = Cluster(num_nodes=2)
        c.charge_comparisons(5)
        c.charge_comparisons(3)
        assert c.metrics.comparisons == 8

    def test_custom_cost_model(self):
        cm = CostModel(record_unit=10.0)
        c = Cluster(num_nodes=1, cost_model=cm)
        c.parallelize([1, 2, 3])
        assert c.metrics.simulated_time == 30.0
