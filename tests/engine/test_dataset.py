"""Unit tests for the RDD-like Dataset API."""

import pytest

from repro.engine import Cluster


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


class TestCreationAndActions:
    def test_parallelize_preserves_all_records(self, cluster):
        ds = cluster.parallelize(range(100))
        assert sorted(ds.collect()) == list(range(100))

    def test_parallelize_spreads_over_partitions(self, cluster):
        ds = cluster.parallelize(range(100))
        assert ds.num_partitions == 4
        sizes = [len(p) for p in ds.partitions]
        assert max(sizes) - min(sizes) <= 1

    def test_count(self, cluster):
        assert cluster.parallelize(range(37)).count() == 37

    def test_take_returns_requested_number(self, cluster):
        assert len(cluster.parallelize(range(50)).take(5)) == 5

    def test_take_more_than_available(self, cluster):
        assert len(cluster.parallelize(range(3)).take(10)) == 3

    def test_first_on_empty_raises(self, cluster):
        with pytest.raises(ValueError):
            cluster.empty_dataset().first()

    def test_is_empty(self, cluster):
        assert cluster.empty_dataset().is_empty()
        assert not cluster.parallelize([1]).is_empty()

    def test_iteration(self, cluster):
        ds = cluster.parallelize([3, 1, 2])
        assert sorted(ds) == [1, 2, 3]

    def test_empty_parallelize(self, cluster):
        assert cluster.parallelize([]).collect() == []


class TestNarrowOps:
    def test_map(self, cluster):
        ds = cluster.parallelize(range(10)).map(lambda x: x * 2)
        assert sorted(ds.collect()) == [0, 2, 4, 6, 8, 10, 12, 14, 16, 18]

    def test_filter(self, cluster):
        ds = cluster.parallelize(range(10)).filter(lambda x: x % 2 == 0)
        assert sorted(ds.collect()) == [0, 2, 4, 6, 8]

    def test_flat_map(self, cluster):
        ds = cluster.parallelize([1, 2]).flat_map(lambda x: [x] * x)
        assert sorted(ds.collect()) == [1, 2, 2]

    def test_map_partitions(self, cluster):
        ds = cluster.parallelize(range(20)).map_partitions(lambda p: [sum(p)])
        assert sum(ds.collect()) == sum(range(20))

    def test_key_by_and_values(self, cluster):
        ds = cluster.parallelize(["ab", "c"]).key_by(len)
        assert sorted(ds.collect()) == [(1, "c"), (2, "ab")]
        assert sorted(ds.values().collect()) == ["ab", "c"]
        assert sorted(ds.keys().collect()) == [1, 2]

    def test_map_values(self, cluster):
        ds = cluster.parallelize([(1, "a"), (2, "b")]).map_values(str.upper)
        assert sorted(ds.collect()) == [(1, "A"), (2, "B")]

    def test_union(self, cluster):
        a = cluster.parallelize([1, 2])
        b = cluster.parallelize([3])
        assert sorted(a.union(b).collect()) == [1, 2, 3]

    def test_union_across_clusters_rejected(self, cluster):
        other = Cluster(num_nodes=2)
        with pytest.raises(ValueError):
            cluster.parallelize([1]).union(other.parallelize([2]))

    def test_sample_deterministic(self, cluster):
        ds = cluster.parallelize(range(1000))
        a = ds.sample(0.1, seed=5).collect()
        b = ds.sample(0.1, seed=5).collect()
        assert a == b
        assert 40 < len(a) < 200

    def test_zip_with_index_assigns_unique_ids(self, cluster):
        ds = cluster.parallelize(["a", "b", "c", "d"]).zip_with_index()
        indices = [i for _, i in ds.collect()]
        assert sorted(indices) == [0, 1, 2, 3]


class TestWideOps:
    def test_group_by_key_groups_all_values(self, cluster):
        ds = cluster.parallelize([(i % 3, i) for i in range(30)])
        grouped = dict(ds.group_by_key().collect())
        assert set(grouped) == {0, 1, 2}
        assert sorted(grouped[0]) == list(range(0, 30, 3))

    @pytest.mark.parametrize("kind", ["sort", "hash"])
    def test_group_by_key_shuffle_kinds_agree(self, cluster, kind):
        ds = cluster.parallelize([(i % 5, i) for i in range(50)])
        grouped = dict(ds.group_by_key(shuffle_kind=kind).collect())
        assert {k: sorted(v) for k, v in grouped.items()} == {
            k: list(range(k, 50, 5)) for k in range(5)
        }

    def test_aggregate_by_key_matches_group_by_key(self, cluster):
        pairs = [(i % 7, i) for i in range(100)]
        agg = dict(
            cluster.parallelize(pairs).aggregate_by_key(
                lambda: 0, lambda a, v: a + v, lambda a, b: a + b
            ).collect()
        )
        grouped = dict(cluster.parallelize(pairs).group_by_key().collect())
        assert agg == {k: sum(v) for k, v in grouped.items()}

    def test_aggregate_by_key_shuffles_fewer_records_when_keys_repeat(self):
        heavy = [(1, i) for i in range(1000)]
        c1 = Cluster(num_nodes=4)
        c1.parallelize(heavy).aggregate_by_key(lambda: 0, lambda a, v: a + 1, lambda a, b: a + b)
        c2 = Cluster(num_nodes=4)
        c2.parallelize(heavy).group_by_key()
        assert c1.metrics.shuffled_records < c2.metrics.shuffled_records / 10

    def test_reduce_by_key(self, cluster):
        ds = cluster.parallelize([("a", 1), ("b", 2), ("a", 3)])
        assert dict(ds.reduce_by_key(lambda a, b: a + b).collect()) == {"a": 4, "b": 2}

    def test_group_locally_no_shuffle(self, cluster):
        before = cluster.metrics.shuffled_records
        ds = cluster.parallelize([{"k": i % 2} for i in range(20)])
        ds.group_locally(lambda r: r["k"])
        assert cluster.metrics.shuffled_records == before

    def test_distinct(self, cluster):
        ds = cluster.parallelize([1, 2, 2, 3, 3, 3])
        assert sorted(ds.distinct().collect()) == [1, 2, 3]

    def test_repartition_preserves_records(self, cluster):
        ds = cluster.parallelize(range(40), num_partitions=2).repartition(8)
        assert sorted(ds.collect()) == list(range(40))
        assert ds.num_partitions == 8


class TestJoins:
    def test_inner_join(self, cluster):
        left = cluster.parallelize([(1, "l1"), (2, "l2")])
        right = cluster.parallelize([(2, "r2"), (3, "r3")])
        assert left.join(right).collect() == [(2, ("l2", "r2"))]

    def test_left_outer_join(self, cluster):
        left = cluster.parallelize([(1, "l1"), (2, "l2")])
        right = cluster.parallelize([(2, "r2")])
        result = dict((k, v) for k, v in left.left_outer_join(right).collect())
        assert result[1] == ("l1", None)
        assert result[2] == ("l2", "r2")

    def test_full_outer_join(self, cluster):
        left = cluster.parallelize([(1, "l")])
        right = cluster.parallelize([(2, "r")])
        result = dict(left.full_outer_join(right).collect())
        assert result == {1: ("l", None), 2: (None, "r")}

    def test_join_many_to_many(self, cluster):
        left = cluster.parallelize([(1, "a"), (1, "b")])
        right = cluster.parallelize([(1, "x"), (1, "y")])
        assert len(left.join(right).collect()) == 4

    def test_cogroup(self, cluster):
        left = cluster.parallelize([(1, "a")])
        right = cluster.parallelize([(1, "x"), (1, "y")])
        [(key, (ls, rs))] = left.cogroup(right).collect()
        assert key == 1 and ls == ["a"] and sorted(rs) == ["x", "y"]

    def test_cartesian_produces_all_pairs(self, cluster):
        a = cluster.parallelize([1, 2])
        b = cluster.parallelize(["x", "y", "z"])
        assert len(a.cartesian(b).collect()) == 6

    def test_cartesian_charges_quadratic_shuffle(self, cluster):
        a = cluster.parallelize(range(30))
        b = cluster.parallelize(range(40))
        before = cluster.metrics.shuffled_records
        a.cartesian(b)
        assert cluster.metrics.shuffled_records - before == 1200


class TestLineage:
    """§7: results are associated with the DAG of operations that built them."""

    def test_root_is_scan(self, cluster):
        ds = cluster.parallelize(range(5), name="numbers")
        assert ds.lineage() == ["scan:numbers"]

    def test_chain_accumulates(self, cluster):
        ds = (
            cluster.parallelize(range(10), name="numbers")
            .map(lambda x: x * 2)
            .filter(lambda x: x > 5)
        )
        assert ds.lineage() == ["scan:numbers", "map", "filter"]

    def test_wide_ops_in_chain(self, cluster):
        ds = cluster.parallelize([(i % 2, i) for i in range(10)]).group_by_key()
        assert ds.lineage()[-1].startswith("groupByKey")

    def test_join_records_other_parent(self, cluster):
        left = cluster.parallelize([(1, "a")], name="left")
        right = cluster.parallelize([(1, "b")], name="right")
        joined = left.join(right)
        assert joined.op == "join"
        assert len(joined.parents) == 2
