"""Unit tests for the shuffle layer."""

import pytest

from repro.engine import Cluster
from repro.engine.shuffle import partition_by_key, shuffle


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4)


def keyed_partitions(n=100, parts=4, keys=10):
    out = [[] for _ in range(parts)]
    for i in range(n):
        out[i % parts].append((i % keys, i))
    return out


class TestShuffle:
    def test_preserves_all_records(self, cluster):
        parts = keyed_partitions()
        new_parts, moved, cost = shuffle(cluster, parts, 4, kind="hash")
        assert sum(len(p) for p in new_parts) == 100
        assert moved == 100
        assert cost > 0

    def test_same_key_lands_together(self, cluster):
        parts = keyed_partitions()
        for kind in ("hash", "sort", "local"):
            new_parts, _, _ = shuffle(cluster, parts, 4, kind=kind)
            location: dict = {}
            for i, part in enumerate(new_parts):
                for key, _ in part:
                    assert location.setdefault(key, i) == i

    def test_hash_costs_more_than_sort_movement(self, cluster):
        parts = keyed_partitions()
        _, _, sort_cost = shuffle(cluster, parts, 4, kind="sort")
        _, _, hash_cost = shuffle(cluster, parts, 4, kind="hash")
        # Hash pays the 2.5x factor; sort pays 1.0x + the n·log n CPU term.
        assert hash_cost != sort_cost

    def test_local_kind_uses_combiner_factor(self, cluster):
        parts = keyed_partitions()
        _, _, local_cost = shuffle(cluster, parts, 4, kind="local")
        expected = 100 * cluster.cost_model.shuffle_unit * cluster.cost_model.combiner_shuffle_factor
        assert local_cost == pytest.approx(expected)

    def test_sort_kind_has_nlogn_term(self, cluster):
        parts = keyed_partitions()
        _, _, cost = shuffle(cluster, parts, 4, kind="sort")
        movement_only = 100 * cluster.cost_model.shuffle_unit
        assert cost > movement_only

    def test_unknown_kind(self, cluster):
        with pytest.raises(ValueError):
            shuffle(cluster, keyed_partitions(), 4, kind="broadcast")

    def test_empty_partitions(self, cluster):
        new_parts, moved, cost = shuffle(cluster, [[], []], 4, kind="hash")
        assert moved == 0
        assert all(not p for p in new_parts)

    def test_single_target_partition(self, cluster):
        new_parts, _, _ = shuffle(cluster, keyed_partitions(), 1, kind="hash")
        assert len(new_parts) == 1 and len(new_parts[0]) == 100


class TestPartitionByKey:
    def test_groups_values(self):
        groups = partition_by_key([(1, "a"), (2, "b"), (1, "c")])
        assert groups == {1: ["a", "c"], 2: ["b"]}

    def test_empty(self):
        assert partition_by_key([]) == {}
