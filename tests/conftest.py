"""Suite-wide plumbing: make the shared ``fixtures`` module importable.

pytest (rootdir mode, no ``__init__.py`` packages) puts each test file's
own directory on ``sys.path`` — not ``tests/`` itself.  Inserting it here
lets every suite do ``from fixtures import ...`` for the shared null-laden
data builders instead of re-declaring them per file.
"""

from __future__ import annotations

import sys
from pathlib import Path

_TESTS_DIR = str(Path(__file__).parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)
