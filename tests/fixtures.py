"""Shared test-data builders for the integration and property suites.

The cleaning operators' hard cases are null-laden rows: ``None`` grouping
keys, ``None`` comparison values, missing attributes.  Several suites used
to declare their own copies of the same datasets; this module is the single
factory.  Two entry points:

* :func:`cyclic_nully_rows` — deterministic rows where column ``c`` is
  ``None`` on a fixed cycle (``i % period == 0``) and a formula of ``i``
  otherwise.  The canonical datasets below are all built from it, so their
  bytes are stable across refactors (the parity tests compare ``repr``
  output, which must not drift).
* :func:`random_nully_rows` — seeded random rows with a configurable null
  rate, for tests that want varied shapes without Hypothesis.

The Hypothesis strategies the DC/incremental property suites share
(``values`` / ``record_sets`` / :func:`with_rids`) live here too.
"""

from __future__ import annotations

import os
import random
from typing import Any, Callable, Mapping, Sequence

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.cleaning.denial import DenialConstraint, TuplePredicate
from repro.sources.columnar import round_robin_split

#: Worker processes for ``execution="parallel"`` tests (CI exports 2).
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "2"))

#: Shared Hypothesis profile: worker-pool examples are slow by nature.
SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Small domains force collisions (equal keys, equal band values, both
# orders violating) and the None weight injects nulls everywhere.
values = st.one_of(st.none(), st.integers(min_value=-3, max_value=3))
record_sets = st.lists(
    st.fixed_dictionaries({"a": values, "b": values, "c": values}),
    min_size=0,
    max_size=12,
)


def with_rids(records: Sequence[Mapping[str, Any]]) -> list[dict]:
    """Stamp positional ``_rid`` values onto generated records."""
    return [dict(r, _rid=i) for i, r in enumerate(records)]


# --------------------------------------------------------------------- #
# Deterministic factory
# --------------------------------------------------------------------- #
#: Column spec: ``name -> (null_period, value_of_i)``.  ``null_period``
#: ``None``/``0`` means the column never goes null; otherwise the value is
#: ``None`` whenever ``i % null_period == 0``.
ColumnSpec = Mapping[str, tuple[int | None, Callable[[int], Any]]]


def cyclic_nully_rows(
    n: int, columns: ColumnSpec, *, rid_first: bool = False
) -> list[dict]:
    """``n`` dict rows with deterministic cyclic nulls and ``_rid = i``.

    ``rid_first`` controls whether ``_rid`` is the first or last key — the
    parity suites compare ``repr`` output, so key order is part of the
    contract a migrated dataset must preserve.
    """
    rows: list[dict] = []
    for i in range(n):
        row: dict[str, Any] = {"_rid": i} if rid_first else {}
        for name, (period, value_of) in columns.items():
            row[name] = None if period and i % period == 0 else value_of(i)
        if not rid_first:
            row["_rid"] = i
        rows.append(row)
    return rows


def random_nully_rows(
    n: int,
    schema: Mapping[str, Sequence[Any]],
    *,
    null_rate: float = 0.25,
    seed: int = 0,
) -> list[dict]:
    """``n`` seeded-random rows; each cell drawn from its column's domain
    and independently nulled with probability ``null_rate``."""
    rnd = random.Random(seed)
    rows = []
    for i in range(n):
        row: dict[str, Any] = {}
        for name, domain in schema.items():
            row[name] = None if rnd.random() < null_rate else rnd.choice(list(domain))
        row["_rid"] = i
        rows.append(row)
    return rows


# --------------------------------------------------------------------- #
# Canonical datasets (formulas are load-bearing: repr-parity tests)
# --------------------------------------------------------------------- #
def nully_fd_rows(n: int = 90) -> list[dict]:
    """Customer-like rows for FD checks; every attribute cycles through
    ``None``."""
    return cyclic_nully_rows(
        n,
        {
            "addr": (7, lambda i: f"a{i % 5}"),
            "phone": (11, lambda i: f"{i % 5}{i % 3}-555"),
            "nation": (13, lambda i: i % 4),
        },
    )


def nully_orders_rows(n: int = 80) -> list[dict]:
    """Order-like rows for DC checks; band and residual values go null."""
    return cyclic_nully_rows(
        n,
        {
            "price": (9, lambda i: float(100 + 13 * (i % 11))),
            "qty": (17, lambda i: i % 5 + 1),
        },
    )


def nully_dedup_rows(n: int = 60) -> list[dict]:
    """Dedup rows with null blocking keys and null similarity attributes."""
    return cyclic_nully_rows(
        n,
        {
            "city": (6, lambda i: f"c{i % 3}"),
            "name": (5, lambda i: f"name {i % 8}"),
        },
        rid_first=True,
    )


def fd_clean_records(n: int = 120) -> list[dict]:
    """Null-free FD-check rows (the three-backend parity datasets)."""
    return cyclic_nully_rows(
        n,
        {
            "addr": (None, lambda i: f"a{i % 9}"),
            "phone": (None, lambda i: f"{i % 9}{i % 4}-555"),
            "nation": (None, lambda i: i % 4),
        },
    )


def dedup_clean_records(n: int = 60) -> list[dict]:
    """Null-free publication-style dedup rows (three-backend parity)."""
    return cyclic_nully_rows(
        n,
        {
            "journal": (None, lambda i: f"j{i % 3}"),
            "title": (None, lambda i: f"title {i % 10}"),
            "pages": (None, lambda i: f"{i}-{i + 9}"),
            "authors": (None, lambda i: f"author {i % 6}"),
        },
        rid_first=True,
    )


def psi_constraint() -> DenialConstraint:
    """Rule ψ: no pair may be cheaper yet larger (price <, qty >)."""
    return DenialConstraint(
        predicates=(
            TuplePredicate("price", "<", "price"),
            TuplePredicate("qty", ">", "qty"),
        ),
    )


def dirty_lineitem_rows(n: int = 200, outlier: int = 30) -> list[dict]:
    """Monotone price/qty rows with one planted ψ-violating outlier."""
    rows = [
        {"price": float(i), "qty": i // 20, "cat": f"c{i % 2}"} for i in range(n)
    ]
    rows[outlier]["qty"] += 3
    return rows


def split_for(records: Sequence[Any], cluster: Any) -> list[list[Any]]:
    """Partition ``records`` exactly as ``register_table`` pins them."""
    return round_robin_split(records, cluster.default_parallelism)
