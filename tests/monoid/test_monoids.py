"""Unit tests for the monoid definitions and law checking."""

import math

import pytest

from repro.errors import MonoidError
from repro.monoid import (
    AllMonoid,
    AnyMonoid,
    AvgMonoid,
    BagMonoid,
    CountMonoid,
    FunctionCompositionMonoid,
    GroupMonoid,
    KMeansAssignMonoid,
    ListMonoid,
    MaxMonoid,
    MinMonoid,
    MultiGroupMonoid,
    SetMonoid,
    SumMonoid,
    TokenFilterMonoid,
    check_monoid_laws,
    get_monoid,
    register_monoid,
)


class TestPrimitiveMonoids:
    def test_sum_fold(self):
        assert SumMonoid().fold([1, 2, 3]) == 6

    def test_count_fold_ignores_values(self):
        assert CountMonoid().fold(["a", "b", None]) == 3

    def test_max_fold(self):
        assert MaxMonoid().fold([3, 9, 1]) == 9

    def test_max_zero_is_identity(self):
        m = MaxMonoid()
        assert m.merge(m.zero(), 5) == 5

    def test_min_fold(self):
        assert MinMonoid().fold([3, 9, 1]) == 1

    def test_min_zero(self):
        assert MinMonoid().zero() == math.inf

    def test_all_monoid(self):
        assert AllMonoid().fold([True, True]) is True
        assert AllMonoid().fold([True, False]) is False
        assert AllMonoid().fold([]) is True

    def test_any_monoid(self):
        assert AnyMonoid().fold([False, True]) is True
        assert AnyMonoid().fold([]) is False

    def test_avg_monoid_finalize(self):
        m = AvgMonoid()
        state = m.fold([2.0, 4.0, 6.0])
        assert AvgMonoid.finalize(state) == 4.0

    def test_avg_empty_raises(self):
        with pytest.raises(MonoidError):
            AvgMonoid.finalize(AvgMonoid().zero())


class TestCollectionMonoids:
    def test_list_is_ordered(self):
        m = ListMonoid()
        assert m.fold([1, 2, 3]) == [1, 2, 3]
        assert not m.commutative

    def test_bag_fold(self):
        assert sorted(BagMonoid().fold([2, 1, 2])) == [1, 2, 2]

    def test_set_dedupes(self):
        assert SetMonoid().fold([1, 1, 2]) == frozenset({1, 2})

    def test_set_idempotent_flag(self):
        assert SetMonoid().idempotent


class TestGroupMonoid:
    def test_groups_by_key(self):
        m = GroupMonoid(key_func=lambda x: x % 2)
        result = m.fold([1, 2, 3, 4])
        assert sorted(result[0]) == [2, 4]
        assert sorted(result[1]) == [1, 3]

    def test_value_func_projects(self):
        m = GroupMonoid(key_func=lambda r: r["k"], value_func=lambda r: r["v"])
        result = m.fold([{"k": "a", "v": 1}, {"k": "a", "v": 2}])
        assert sorted(result["a"]) == [1, 2]

    def test_merge_combines_same_keys(self):
        m = GroupMonoid(key_func=lambda x: "all")
        left = m.unit(1)
        right = m.unit(2)
        assert sorted(m.merge(left, right)["all"]) == [1, 2]


class TestMultiGroupMonoid:
    def test_element_lands_in_every_key(self):
        m = MultiGroupMonoid(keys_func=lambda x: [x, x + 1])
        result = m.fold([5])
        assert set(result) == {5, 6}

    def test_inner_set_semantics(self):
        m = MultiGroupMonoid(keys_func=lambda x: ["k"])
        assert m.fold(["a", "a"])["k"] == frozenset({"a"})


class TestTokenFilterMonoid:
    def test_unit_maps_word_to_its_tokens(self):
        m = TokenFilterMonoid(q=2)
        unit = m.unit("abc")
        assert set(unit) == {"ab", "bc"}
        assert unit["ab"] == frozenset({"abc"})

    def test_short_word_gets_fallback_group(self):
        m = TokenFilterMonoid(q=5)
        assert set(m.unit("ab")) == {"ab"}

    def test_similar_words_share_a_group(self):
        # "smith"/"smyth" share the 2-gram "sm" (and "th"), so token
        # filtering with q=2 puts them in a common group; with q=3 they share
        # no token — exactly the recall-vs-cost trade-off Fig. 3/Table 3
        # explores over q.
        m2 = TokenFilterMonoid(q=2)
        merged2 = m2.fold(["smith", "smyth"])
        assert any(len(v) == 2 for v in merged2.values())
        m3 = TokenFilterMonoid(q=3)
        merged3 = m3.fold(["smith", "smyth"])
        assert all(len(v) == 1 for v in merged3.values())


class TestKMeansAssignMonoid:
    def test_assigns_to_closest_center(self):
        m = KMeansAssignMonoid(centers=["aaaa", "zzzz"])
        result = m.unit("aaab")
        assert set(result) == {0}

    def test_delta_allows_multiple_assignment(self):
        m = KMeansAssignMonoid(centers=["abcd", "abce"], delta=1.0)
        assert set(m.unit("abcf")) == {0, 1}

    def test_empty_centers_rejected(self):
        with pytest.raises(MonoidError):
            KMeansAssignMonoid(centers=[])


class TestFunctionCompositionMonoid:
    def test_composes_in_order(self):
        m = FunctionCompositionMonoid()
        f = m.fold([lambda s: s + "a", lambda s: s + "b"])
        assert f("") == "ab"

    def test_zero_is_identity(self):
        m = FunctionCompositionMonoid()
        assert m.zero()("x") == "x"


class TestLawChecking:
    def test_laws_hold_for_sum(self):
        check_monoid_laws(SumMonoid(), [1, 2, 3])

    def test_laws_hold_for_bag_with_canonicalization(self):
        check_monoid_laws(BagMonoid(), [1, 2, 3], normalize=sorted)

    def test_laws_catch_broken_monoid(self):
        class Broken(SumMonoid):
            def merge(self, a, b):
                return a - b  # not associative, zero not identity

        with pytest.raises(MonoidError):
            check_monoid_laws(Broken(), [1, 2, 3])


class TestRegistry:
    def test_lookup_known(self):
        assert get_monoid("sum").name == "sum"
        assert get_monoid("bag").name == "bag"

    def test_lookup_unknown(self):
        with pytest.raises(MonoidError):
            get_monoid("median")

    def test_register_extension(self):
        class ProductMonoid(SumMonoid):
            name = "product"

            def zero(self):
                return 1

            def merge(self, a, b):
                return a * b

        register_monoid("product", ProductMonoid)
        assert get_monoid("product").fold([2, 3, 4]) == 24
