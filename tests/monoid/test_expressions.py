"""Unit tests for the expression IR: evaluation, free vars, substitution."""

import pytest

from repro.monoid import (
    BagMonoid,
    BinOp,
    Call,
    Const,
    If,
    Lambda,
    Merge,
    Proj,
    RecordCons,
    UnaryOp,
    Var,
    evaluate,
)


class TestEvaluation:
    def test_const(self):
        assert evaluate(Const(42), {}) == 42

    def test_var(self):
        assert evaluate(Var("x"), {"x": 7}) == 7

    def test_unbound_var_raises(self):
        with pytest.raises(NameError):
            evaluate(Var("missing"), {})

    def test_proj_on_dict(self):
        assert evaluate(Proj(Var("r"), "name"), {"r": {"name": "ada"}}) == "ada"

    def test_proj_missing_attr_raises_with_known_fields(self):
        with pytest.raises(KeyError) as info:
            evaluate(Proj(Var("r"), "nope"), {"r": {"a": 1}})
        assert "nope" in str(info.value)

    def test_record_cons(self):
        expr = RecordCons.of(a=Const(1), b=Var("x"))
        assert evaluate(expr, {"x": 2}) == {"a": 1, "b": 2}

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 2, 3, 5), ("-", 5, 3, 2), ("*", 4, 3, 12), ("/", 6, 3, 2.0),
            ("%", 7, 3, 1), ("==", 1, 1, True), ("!=", 1, 2, True),
            ("<", 1, 2, True), ("<=", 2, 2, True), (">", 3, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_binops(self, op, left, right, expected):
        assert evaluate(BinOp(op, Const(left), Const(right)), {}) == expected

    def test_and_short_circuits(self):
        # The right side would raise if evaluated.
        expr = BinOp("and", Const(False), Proj(Var("missing"), "x"))
        assert evaluate(expr, {}) is False

    def test_or_short_circuits(self):
        expr = BinOp("or", Const(True), Var("missing"))
        assert evaluate(expr, {}) is True

    def test_unknown_binop(self):
        with pytest.raises(ValueError):
            evaluate(BinOp("**", Const(2), Const(3)), {})

    def test_unary_not_and_neg(self):
        assert evaluate(UnaryOp("not", Const(False)), {}) is True
        assert evaluate(UnaryOp("-", Const(5)), {}) == -5

    def test_call_resolves_from_registry(self):
        expr = Call("double", (Const(21),))
        assert evaluate(expr, {}, {"double": lambda x: x * 2}) == 42

    def test_unknown_call_raises(self):
        with pytest.raises(NameError):
            evaluate(Call("nope", ()), {}, {})

    def test_if(self):
        expr = If(Var("c"), Const("yes"), Const("no"))
        assert evaluate(expr, {"c": True}) == "yes"
        assert evaluate(expr, {"c": False}) == "no"

    def test_lambda_closure(self):
        expr = Lambda(("x",), BinOp("+", Var("x"), Var("y")))
        func = evaluate(expr, {"y": 10})
        assert func(5) == 15

    def test_merge(self):
        expr = Merge(BagMonoid(), Const([1]), Const([2]))
        assert evaluate(expr, {}) == [1, 2]


class TestFreeVars:
    def test_const_has_none(self):
        assert Const(1).free_vars() == set()

    def test_var(self):
        assert Var("x").free_vars() == {"x"}

    def test_binop_unions(self):
        assert BinOp("+", Var("a"), Var("b")).free_vars() == {"a", "b"}

    def test_lambda_binds_params(self):
        expr = Lambda(("x",), BinOp("+", Var("x"), Var("y")))
        assert expr.free_vars() == {"y"}

    def test_record_cons(self):
        expr = RecordCons.of(a=Var("p"), b=Var("q"))
        assert expr.free_vars() == {"p", "q"}


class TestSubstitution:
    def test_var_replaced(self):
        assert Var("x").substitute({"x": Const(5)}) == Const(5)

    def test_untouched_var(self):
        assert Var("y").substitute({"x": Const(5)}) == Var("y")

    def test_nested(self):
        expr = BinOp("+", Var("x"), Proj(Var("x"), "f"))
        result = expr.substitute({"x": Var("z")})
        assert result == BinOp("+", Var("z"), Proj(Var("z"), "f"))

    def test_lambda_shadows(self):
        expr = Lambda(("x",), Var("x"))
        assert expr.substitute({"x": Const(1)}) == expr

    def test_substitution_is_pure(self):
        original = BinOp("+", Var("x"), Const(1))
        original.substitute({"x": Const(9)})
        assert original.left == Var("x")
