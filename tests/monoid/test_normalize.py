"""Unit tests for the normalization rules (§4.2)."""

from repro.monoid import (
    AnyMonoid,
    BagMonoid,
    Bind,
    BinOp,
    Comprehension,
    Const,
    Filter,
    Generator,
    If,
    Merge,
    NormalizationTrace,
    Proj,
    RecordCons,
    SetMonoid,
    SumMonoid,
    UnaryOp,
    Var,
    evaluate,
    evaluate_comprehension,
    normalize,
)


def comp(monoid, head, *qualifiers):
    return Comprehension(monoid, head, tuple(qualifiers))


def trace_of(expr):
    trace = NormalizationTrace()
    normalize(expr, trace)
    return trace.applied


class TestBetaReduction:
    def test_bind_inlined(self):
        c = comp(
            SumMonoid(),
            Var("y"),
            Generator("x", Const([1, 2])),
            Bind("y", BinOp("*", Var("x"), Const(3))),
        )
        result = normalize(c)
        assert all(not isinstance(q, Bind) for q in result.qualifiers)
        assert evaluate_comprehension(result) == 9

    def test_trace_records_rule(self):
        c = comp(SumMonoid(), Var("y"), Generator("x", Const([1])), Bind("y", Var("x")))
        assert "N-bind" in trace_of(c)


class TestStaticSimplification:
    def test_constant_folding(self):
        expr = BinOp("+", Const(2), Const(3))
        assert normalize(expr) == Const(5)

    def test_proj_on_record_cons(self):
        expr = Proj(RecordCons.of(a=Const(1), b=Const(2)), "a")
        assert normalize(expr) == Const(1)

    def test_if_with_constant_condition(self):
        expr = If(Const(True), Var("t"), Var("e"))
        assert normalize(expr) == Var("t")

    def test_not_folding(self):
        assert normalize(UnaryOp("not", Const(False))) == Const(True)

    def test_and_with_true_side(self):
        expr = BinOp("and", Const(True), Var("p"))
        assert normalize(expr) == Var("p")

    def test_and_with_false_side(self):
        expr = BinOp("and", Var("p"), Const(False))
        assert normalize(expr) == Const(False)

    def test_or_folding(self):
        assert normalize(BinOp("or", Const(False), Var("p"))) == Var("p")

    def test_true_filter_dropped(self):
        c = comp(SumMonoid(), Var("x"), Generator("x", Var("d")), Filter(Const(True)))
        result = normalize(c)
        assert all(not isinstance(q, Filter) for q in result.qualifiers)

    def test_false_filter_collapses_to_zero(self):
        c = comp(SumMonoid(), Var("x"), Generator("x", Var("d")), Filter(Const(False)))
        assert normalize(c) == Const(0)


class TestGeneratorRules:
    def test_empty_collection_collapses(self):
        c = comp(SumMonoid(), Var("x"), Generator("x", Const([])))
        assert normalize(c) == Const(0)

    def test_singleton_becomes_bind_then_inlines(self):
        c = comp(SumMonoid(), Var("x"), Generator("x", Const([7])))
        result = normalize(c)
        assert evaluate(result, {}) == 7 or evaluate_comprehension(result) == 7

    def test_flatten_nested_bag(self):
        inner = comp(BagMonoid(), BinOp("*", Var("x"), Const(2)), Generator("x", Var("d")))
        outer = comp(SumMonoid(), Var("y"), Generator("y", inner))
        result = normalize(outer)
        # After flattening there is a single comprehension over d.
        assert isinstance(result, Comprehension)
        gens = [q for q in result.qualifiers if isinstance(q, Generator)]
        assert len(gens) == 1 and gens[0].source == Var("d")
        assert evaluate_comprehension(result, {"d": [1, 2, 3]}) == 12

    def test_grouping_comprehension_not_flattened(self):
        from repro.algebra import make_group_comprehension

        groups = make_group_comprehension(
            key=Proj(Var("x"), "k"),
            value=Var("x"),
            qualifiers=(Generator("x", Var("d")),),
        )
        outer = comp(BagMonoid(), Var("g"), Generator("g", groups))
        result = normalize(outer)
        assert isinstance(result.qualifiers[0].source, Comprehension)


class TestExistsUnnesting:
    def test_exists_unnested_into_idempotent_outer(self):
        exists = comp(
            AnyMonoid(),
            BinOp("==", Var("y"), Var("x")),
            Generator("y", Var("other")),
        )
        outer = comp(
            SetMonoid(), Var("x"), Generator("x", Var("d")), Filter(exists)
        )
        result = normalize(outer)
        gens = [q for q in result.qualifiers if isinstance(q, Generator)]
        assert len(gens) == 2
        value = evaluate_comprehension(result, {"d": [1, 2, 3], "other": [2, 3, 4]})
        assert value == frozenset({2, 3})

    def test_exists_not_unnested_for_bag(self):
        # Bags are not idempotent: unnesting would duplicate outputs.
        exists = comp(AnyMonoid(), Const(True), Generator("y", Var("other")))
        outer = comp(BagMonoid(), Var("x"), Generator("x", Var("d")), Filter(exists))
        result = normalize(outer)
        gens = [q for q in result.qualifiers if isinstance(q, Generator)]
        assert len(gens) == 1


class TestIfSplit:
    def test_if_head_splits_into_merge(self):
        c = comp(
            BagMonoid(),
            If(BinOp(">", Var("x"), Const(1)), Const("big"), Const("small")),
            Generator("x", Var("d")),
        )
        result = normalize(c)
        assert isinstance(result, Merge)
        value = evaluate(result, {"d": [0, 2]})
        assert sorted(value) == ["big", "small"]

    def test_if_split_preserves_semantics_with_filters(self):
        c = comp(
            BagMonoid(),
            If(BinOp(">", Var("x"), Const(2)), Var("x"), Const(0)),
            Generator("x", Var("d")),
            Filter(BinOp("<", Var("x"), Const(10))),
        )
        data = {"d": [1, 3, 5, 11]}
        assert sorted(evaluate(normalize(c), dict(data))) == sorted(
            evaluate_comprehension(c, dict(data))
        )


class TestFilterPushdown:
    def test_filter_moves_before_unrelated_generator(self):
        c = comp(
            SumMonoid(),
            BinOp("+", Var("x"), Var("y")),
            Generator("x", Var("a")),
            Generator("y", Var("b")),
            Filter(BinOp(">", Var("x"), Const(0))),
        )
        result = normalize(c)
        kinds = [type(q).__name__ for q in result.qualifiers]
        assert kinds == ["Generator", "Filter", "Generator"]

    def test_pushdown_reaches_fixpoint(self):
        # Two filters with identical dependencies must not oscillate.
        c = comp(
            SumMonoid(),
            Var("x"),
            Generator("x", Var("a")),
            Generator("y", Var("b")),
            Filter(BinOp(">", Var("x"), Const(0))),
            Filter(BinOp("<", Var("x"), Const(9))),
        )
        once = normalize(c)
        twice = normalize(once)
        assert once == twice

    def test_semantics_preserved(self):
        c = comp(
            SumMonoid(),
            BinOp("+", Var("x"), Var("y")),
            Generator("x", Var("a")),
            Generator("y", Var("b")),
            Filter(BinOp(">", Var("x"), Const(1))),
        )
        env = {"a": [1, 2, 3], "b": [10, 20]}
        assert evaluate_comprehension(normalize(c), dict(env)) == (
            evaluate_comprehension(c, dict(env))
        )
