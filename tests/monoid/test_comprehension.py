"""Unit tests for comprehension evaluation (the reference semantics)."""

import pytest

from repro.monoid import (
    BagMonoid,
    Bind,
    BinOp,
    Comprehension,
    Const,
    Filter,
    Generator,
    GroupMonoid,
    MaxMonoid,
    Proj,
    SetMonoid,
    SumMonoid,
    Var,
    evaluate_comprehension,
    fresh_var,
)


def comp(monoid, head, *qualifiers):
    return Comprehension(monoid, head, tuple(qualifiers))


class TestBasicComprehensions:
    def test_paper_sum_example(self):
        # +{x | x <- [1,2,10], x < 5}  ==  3
        c = comp(
            SumMonoid(),
            Var("x"),
            Generator("x", Const([1, 2, 10])),
            Filter(BinOp("<", Var("x"), Const(5))),
        )
        assert evaluate_comprehension(c) == 3

    def test_paper_cross_product_example(self):
        # set{(x,y) | x <- {1,2}, y <- {3,4}}
        c = comp(
            SetMonoid(),
            BinOp("+", Var("x"), Var("y")),
            Generator("x", Const([1, 2])),
            Generator("y", Const([3, 4])),
        )
        assert evaluate_comprehension(c) == frozenset({4, 5, 6})

    def test_bag_collects_duplicates(self):
        c = comp(BagMonoid(), Const(1), Generator("x", Const([1, 2, 3])))
        assert evaluate_comprehension(c) == [1, 1, 1]

    def test_max(self):
        c = comp(MaxMonoid(), Var("x"), Generator("x", Const([3, 8, 2])))
        assert evaluate_comprehension(c) == 8

    def test_empty_source_yields_zero(self):
        c = comp(SumMonoid(), Var("x"), Generator("x", Const([])))
        assert evaluate_comprehension(c) == 0

    def test_bind_qualifier(self):
        c = comp(
            SumMonoid(),
            Var("y"),
            Generator("x", Const([1, 2])),
            Bind("y", BinOp("*", Var("x"), Const(10))),
        )
        assert evaluate_comprehension(c) == 30

    def test_filter_between_generators(self):
        c = comp(
            SumMonoid(),
            Var("y"),
            Generator("x", Const([1, 2, 3])),
            Filter(BinOp(">", Var("x"), Const(1))),
            Generator("y", Const([10])),
        )
        assert evaluate_comprehension(c) == 20

    def test_env_provides_initial_bindings(self):
        c = comp(SumMonoid(), Var("x"), Generator("x", Var("data")))
        assert evaluate_comprehension(c, {"data": [4, 5]}) == 9


class TestNestedComprehensions:
    def test_comprehension_as_generator_source(self):
        inner = comp(
            BagMonoid(),
            BinOp("*", Var("x"), Const(2)),
            Generator("x", Const([1, 2])),
        )
        outer = comp(SumMonoid(), Var("y"), Generator("y", inner))
        assert evaluate_comprehension(outer) == 6

    def test_grouping_comprehension_iterates_as_group_records(self):
        groups = comp(
            GroupMonoid(key_func=lambda r: r["key"], value_func=lambda r: r["value"]),
            # standard structural form: head builds {key, value}
            _kv(Proj(Var("x"), "k"), Var("x")),
            Generator("x", Var("data")),
        )
        outer = comp(
            BagMonoid(),
            Proj(Var("g"), "key"),
            Generator("g", groups),
        )
        data = [{"k": "a"}, {"k": "b"}, {"k": "a"}]
        result = evaluate_comprehension(outer, {"data": data})
        assert sorted(result) == ["a", "b"]


def _kv(key, value):
    from repro.monoid import RecordCons

    return RecordCons((("key", key), ("value", value)))


class TestFreshVar:
    def test_unique(self):
        names = {fresh_var() for _ in range(100)}
        assert len(names) == 100

    def test_prefix(self):
        assert fresh_var("g").startswith("$g")


class TestComprehensionExpr:
    def test_free_vars_excludes_bound(self):
        c = comp(
            SumMonoid(),
            BinOp("+", Var("x"), Var("outer")),
            Generator("x", Var("data")),
        )
        assert c.free_vars() == {"data", "outer"}

    def test_substitute_respects_binding(self):
        c = comp(SumMonoid(), Var("x"), Generator("x", Var("data")))
        substituted = c.substitute({"data": Var("other"), "x": Const(99)})
        assert substituted.qualifiers[0].source == Var("other")
        assert substituted.head == Var("x")  # bound occurrence untouched
